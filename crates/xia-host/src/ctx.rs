//! The host context: the "OS API" applications program against.

use std::collections::{BTreeMap, VecDeque};

use simnet::{Context as SimContext, LinkId, SimDuration, SimTime};
use util::bytes::Bytes;
use xcache::{ChunkFetcher, ChunkStore};
use xia_addr::{Dag, Xid};
use xia_transport::{TransportError, TransportEvent, TransportMux};
use xia_wire::{ConnId, XiaPacket, L4};

/// Tag marking a host timer key as belonging to an application.
pub(crate) const APP_TIMER_TAG: u64 = 0x4150 << 48;

/// Who owns a transport connection on this host.
#[derive(Debug)]
pub(crate) enum Owner {
    /// The built-in chunk server.
    Server,
    /// Application `idx` (raw connection API).
    App(usize),
    /// A chunk fetch delegation issued by application `idx`.
    Fetch(usize),
}

/// State of one in-flight chunk fetch.
#[derive(Debug)]
pub(crate) struct FetchState {
    pub(crate) handle: u64,
    pub(crate) fetcher: ChunkFetcher,
    /// Terminal result already reported to the app.
    pub(crate) done: bool,
}

/// Host identity and attachment state shared with applications.
#[derive(Debug)]
pub struct HostMeta {
    pub(crate) hid: Xid,
    pub(crate) nid: Option<Xid>,
    pub(crate) primary_link: Option<LinkId>,
    pub(crate) cache_fetched: bool,
    pub(crate) services: Vec<Xid>,
    pub(crate) next_fetch_handle: u64,
    pub(crate) next_token: u64,
}

impl HostMeta {
    /// The host's current locator address (`NID : HID`), or a bare `HID`
    /// DAG while unattached.
    pub(crate) fn local_dag(&self) -> Dag {
        match self.nid {
            Some(nid) => Dag::host(nid, self.hid),
            None => Dag::direct(self.hid),
        }
    }
}

/// Bridges the transport's environment to the simulator context. All
/// packet emissions go to the host's outbox; the wrapping node (end host
/// or router) decides the egress link — a router routes them through its
/// own forwarding engine.
pub(crate) struct HostEnv<'a, 'b> {
    pub(crate) sim: &'a mut SimContext<'b, XiaPacket>,
    pub(crate) outbox: &'a mut Vec<XiaPacket>,
    pub(crate) pending: &'a mut VecDeque<TransportEvent>,
}

impl xia_transport::TransportEnv for HostEnv<'_, '_> {
    fn now(&self) -> SimTime {
        self.sim.now()
    }
    fn emit(&mut self, pkt: XiaPacket) {
        self.outbox.push(pkt);
    }
    fn set_timer(&mut self, delay: SimDuration, key: u64) {
        self.sim.set_timer(delay, key);
    }
    fn deliver(&mut self, event: TransportEvent) {
        self.pending.push_back(event);
    }
}

/// The window through which an [`crate::App`] uses its host: transport,
/// chunk fetching, control datagrams, timers, attachment management and
/// the local chunk store.
pub struct HostCtx<'a, 'b> {
    pub(crate) sim: &'a mut SimContext<'b, XiaPacket>,
    pub(crate) mux: &'a mut TransportMux,
    pub(crate) store: &'a mut ChunkStore,
    pub(crate) meta: &'a mut HostMeta,
    pub(crate) owners: &'a mut BTreeMap<ConnId, Owner>,
    pub(crate) fetchers: &'a mut BTreeMap<ConnId, FetchState>,
    pub(crate) pending: &'a mut VecDeque<TransportEvent>,
    pub(crate) outbox: &'a mut Vec<XiaPacket>,
    pub(crate) app_idx: usize,
}

impl<'a, 'b> HostCtx<'a, 'b> {
    fn env<'c>(&'c mut self) -> (&'c mut TransportMux, HostEnv<'c, 'b>) {
        (
            self.mux,
            HostEnv {
                sim: self.sim,
                outbox: self.outbox,
                pending: self.pending,
            },
        )
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// This host's identifier.
    pub fn hid(&self) -> Xid {
        self.meta.hid
    }

    /// The network the host is currently attached to, if any.
    pub fn nid(&self) -> Option<Xid> {
        self.meta.nid
    }

    /// The current primary (data) interface.
    pub fn primary_link(&self) -> Option<LinkId> {
        self.meta.primary_link
    }

    /// Whether `link` is currently up.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.sim.link_up(link)
    }

    /// Attaches the data plane to `link` inside network `nid` (an
    /// association). Does not migrate live connections; see
    /// [`HostCtx::migrate_connections`].
    pub fn set_attachment(&mut self, nid: Option<Xid>, link: Option<LinkId>) {
        self.meta.nid = nid;
        self.meta.primary_link = link;
    }

    /// Migrates all live connections to the current local address after an
    /// active-session-migration pause (the layer-3 handoff cost).
    pub fn migrate_connections(&mut self, pause: SimDuration) {
        let new_src = self.meta.local_dag();
        let (mux, mut env) = self.env();
        mux.migrate_all(&mut env, new_src, pause);
    }

    /// The local chunk store (XCache).
    pub fn store(&mut self) -> &mut ChunkStore {
        self.store
    }

    /// Registers a service SID so control datagrams addressed to it are
    /// delivered to this host.
    pub fn register_service(&mut self, sid: Xid) {
        if !self.meta.services.contains(&sid) {
            self.meta.services.push(sid);
        }
    }

    /// Opens a transport connection to `dst`; events arrive via
    /// [`crate::App::on_transport_event`].
    pub fn connect(&mut self, dst: Dag) -> ConnId {
        let src = self.meta.local_dag();
        let app_idx = self.app_idx;
        let (mux, mut env) = self.env();
        let id = mux.connect(&mut env, dst, src);
        self.owners.insert(id, Owner::App(app_idx));
        id
    }

    /// Sends bytes on an app-owned connection.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (unknown/closing connection).
    pub fn send(&mut self, conn: ConnId, data: Bytes) -> Result<(), TransportError> {
        let (mux, mut env) = self.env();
        mux.send(&mut env, conn, data)
    }

    /// Closes the send direction of an app-owned connection.
    ///
    /// # Errors
    ///
    /// Propagates transport errors (unknown connection).
    pub fn close(&mut self, conn: ConnId) -> Result<(), TransportError> {
        let (mux, mut env) = self.env();
        mux.close(&mut env, conn)
    }

    /// Aborts a connection.
    pub fn abort(&mut self, conn: ConnId) {
        let (mux, mut env) = self.env();
        mux.abort(&mut env, conn);
    }

    /// Smoothed RTT of a live connection, if measured.
    pub fn srtt(&self, conn: ConnId) -> Option<SimDuration> {
        self.mux.srtt(conn)
    }

    /// Number of live transport connections on this host.
    pub fn active_connection_count(&self) -> usize {
        self.mux.active_connections()
    }

    /// The native `XfetchChunk`: fetches the chunk addressed by `dag`
    /// (typically `CID | NID : HID`). Returns a handle; completion arrives
    /// at [`crate::App::on_fetch_complete`].
    pub fn xfetch_chunk(&mut self, dag: Dag) -> u64 {
        let cid = dag.intent();
        let handle = self.meta.next_fetch_handle;
        self.meta.next_fetch_handle += 1;
        let src = self.meta.local_dag();
        let app_idx = self.app_idx;
        let (mux, mut env) = self.env();
        let conn = mux.connect(&mut env, dag, src);
        self.owners.insert(conn, Owner::Fetch(app_idx));
        self.fetchers.insert(
            conn,
            FetchState {
                handle,
                fetcher: ChunkFetcher::new(cid),
                done: false,
            },
        );
        handle
    }

    /// Sends a best-effort control datagram to `dst` for `service`.
    /// Returns the correlation token (echoed by well-behaved responders).
    pub fn send_control(&mut self, dst: Dag, service: Xid, body: Bytes) -> u64 {
        let token = self.meta.next_token;
        self.meta.next_token += 1;
        self.send_control_with_token(dst, service, token, body);
        token
    }

    /// Sends a control datagram echoing an existing `token` (replies).
    pub fn send_control_with_token(&mut self, dst: Dag, service: Xid, token: u64, body: Bytes) {
        let src = self.meta.local_dag();
        let pkt = XiaPacket::new(
            dst,
            src,
            L4::Control {
                service,
                token,
                body,
            },
        );
        self.outbox.push(pkt);
    }

    /// Sends a raw packet on a specific link (used by infrastructure apps,
    /// e.g. beacon transmitters on AP radios).
    pub fn send_on_link(&mut self, link: LinkId, pkt: XiaPacket) {
        self.sim.send(link, pkt);
    }

    /// Arms an application timer; `key` (low 32 bits) returns via
    /// [`crate::App::on_timer`].
    pub fn set_app_timer(&mut self, delay: SimDuration, key: u32) {
        let packed = APP_TIMER_TAG | ((self.app_idx as u64 & 0xFFFF) << 32) | u64::from(key);
        self.sim.set_timer(delay, packed);
    }

    /// Uniform random value in `[0, 1)` from the simulation's seeded RNG.
    pub fn random_f64(&mut self) -> f64 {
        self.sim.random_f64()
    }

    /// Whether the simulation's flight recorder is attached. Check before
    /// building event payloads by hand — `util::trace_event!` does it for
    /// you.
    pub fn tracing(&self) -> bool {
        self.sim.tracing()
    }

    /// Records `event` against this host's node at the current sim time;
    /// a no-op when tracing is off.
    pub fn trace(&mut self, event: simnet::TraceEvent) {
        self.sim.trace(event);
    }
}
