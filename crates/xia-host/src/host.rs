//! The host stack and its simulator node wrapper.

use std::collections::{BTreeMap, VecDeque};

use simnet::{Context as SimContext, LinkId, Node, NodeFault, TimerKey};
use util::bytes::Bytes;
use xcache::{
    chunk_content, ChunkServer, ChunkStore, EvictionPolicy, FetchProgress, Manifest, ServerAction,
};
use xia_addr::{Principal, Xid};
use xia_transport::{TransportConfig, TransportEvent, TransportMux};
use xia_wire::{ConnId, XiaPacket, L4};

use crate::app::{App, FetchResult};
use crate::ctx::{FetchState, HostCtx, HostEnv, HostMeta, Owner, APP_TIMER_TAG};

/// Configuration of a host stack.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Host identifier.
    pub hid: Xid,
    /// Transport tuning (XIA prototype model by default).
    pub transport: TransportConfig,
    /// Local XCache capacity in bytes.
    pub cache_capacity: usize,
    /// Local XCache eviction policy.
    pub cache_policy: EvictionPolicy,
    /// Whether chunks fetched by this host are inserted into its XCache
    /// for reuse ("clients can optionally store chunks in their XCache").
    pub cache_fetched: bool,
}

impl HostConfig {
    /// A host with defaults suitable for most roles: XIA transport model,
    /// 256 MiB cache, LRU, no client-side caching of fetched chunks.
    pub fn new(hid: Xid) -> Self {
        HostConfig {
            hid,
            transport: TransportConfig::xia(),
            cache_capacity: 256 * 1024 * 1024,
            cache_policy: EvictionPolicy::Lru,
            cache_fetched: false,
        }
    }
}

/// A full XIA host stack: transport mux, local XCache with its chunk
/// server, and a set of [`App`]s.
///
/// `Host` is deliberately not a [`Node`] itself: end hosts wrap it in
/// [`EndHost`], and routers (`xia-router`) embed it next to a forwarding
/// engine so a router's XCache can serve intercepted CID requests.
pub struct Host {
    meta: HostMeta,
    mux: TransportMux,
    store: ChunkStore,
    server: ChunkServer,
    apps: Vec<Option<Box<dyn App>>>,
    owners: BTreeMap<ConnId, Owner>,
    fetchers: BTreeMap<ConnId, FetchState>,
    pending: VecDeque<TransportEvent>,
    outbox: Vec<XiaPacket>,
    /// Crashed and not yet restarted: the stack drops all traffic, timers
    /// and link events until a [`NodeFault::Restart`] arrives.
    down: bool,
}

impl Host {
    /// Builds a host from its configuration.
    pub fn new(config: HostConfig) -> Self {
        Host {
            meta: HostMeta {
                hid: config.hid,
                nid: None,
                primary_link: None,
                cache_fetched: config.cache_fetched,
                services: Vec::new(),
                next_fetch_handle: 1,
                next_token: 1,
            },
            mux: TransportMux::new(config.transport, config.hid),
            store: ChunkStore::new(config.cache_capacity, config.cache_policy),
            server: ChunkServer::new(),
            apps: Vec::new(),
            owners: BTreeMap::new(),
            fetchers: BTreeMap::new(),
            pending: VecDeque::new(),
            outbox: Vec::new(),
            down: false,
        }
    }

    /// Adds an application; returns its index.
    pub fn add_app(&mut self, app: Box<dyn App>) -> usize {
        self.apps.push(Some(app));
        self.apps.len() - 1
    }

    /// Downcast access to an application.
    pub fn app<T: App>(&self, idx: usize) -> Option<&T> {
        let app = self.apps.get(idx)?.as_deref()?;
        (app as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable downcast access to an application.
    pub fn app_mut<T: App>(&mut self, idx: usize) -> Option<&mut T> {
        let app = self.apps.get_mut(idx)?.as_deref_mut()?;
        (app as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    /// This host's identifier.
    pub fn hid(&self) -> Xid {
        self.meta.hid
    }

    /// Network attachment, if any.
    pub fn nid(&self) -> Option<Xid> {
        self.meta.nid
    }

    /// Sets the data-plane attachment before or during a run.
    pub fn set_attachment(&mut self, nid: Option<Xid>, link: Option<LinkId>) {
        self.meta.nid = nid;
        self.meta.primary_link = link;
    }

    /// Registers a control service SID (e.g. a staging VNF).
    pub fn register_service(&mut self, sid: Xid) {
        if !self.meta.services.contains(&sid) {
            self.meta.services.push(sid);
        }
    }

    /// The local chunk store.
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }

    /// Mutable access to the local chunk store.
    pub fn store_mut(&mut self) -> &mut ChunkStore {
        &mut self.store
    }

    /// The built-in chunk server's counters.
    pub fn server(&self) -> &ChunkServer {
        &self.server
    }

    /// Live transport connections.
    pub fn active_connections(&self) -> usize {
        self.mux.active_connections()
    }

    /// Whether this stack owns transport connection `conn`.
    pub fn knows_connection(&self, conn: ConnId) -> bool {
        self.mux.has_connection(conn)
    }

    /// The current primary (data) link, if attached.
    pub fn primary_link(&self) -> Option<LinkId> {
        self.meta.primary_link
    }

    /// Drains packets emitted by the stack since the last call. The
    /// wrapping node decides their egress: an [`EndHost`] sends them on
    /// its primary link; a router routes them through its forwarding
    /// engine.
    pub fn take_outbox(&mut self) -> Vec<XiaPacket> {
        std::mem::take(&mut self.outbox)
    }

    /// Publishes `content` as pinned chunks of `chunk_size` bytes and
    /// returns the manifest clients fetch from.
    pub fn publish_content(&mut self, content: &Bytes, chunk_size: usize) -> Manifest {
        let (manifest, chunks) = chunk_content(content, chunk_size);
        for (cid, data) in chunks {
            self.store.publish(cid, data);
        }
        manifest
    }

    /// Whether this stack should consume `pkt` (local delivery).
    pub fn wants_packet(&self, pkt: &XiaPacket) -> bool {
        match &pkt.l4 {
            L4::Beacon(_) => true,
            L4::Control { .. } => {
                // Delivery is by address: the datagram is ours if its
                // intent is a service we host or our own HID. The payload's
                // service field only demultiplexes between local apps.
                let intent = pkt.dst.intent();
                self.meta.services.contains(&intent) || intent == self.meta.hid
            }
            L4::Segment(seg) => {
                if self.mux.has_connection(seg.conn) {
                    return true;
                }
                let intent = pkt.dst.intent();
                if intent == self.meta.hid {
                    return true;
                }
                if intent.principal() == Principal::Cid {
                    return self.store.contains(&intent)
                        || pkt.dst.fallback_host() == Some(self.meta.hid);
                }
                false
            }
        }
    }

    /// Delivers the simulation start to all apps.
    pub fn start(&mut self, ctx: &mut SimContext<'_, XiaPacket>) {
        for idx in 0..self.apps.len() {
            self.with_app(ctx, idx, |app, hctx| app.on_start(hctx));
        }
        self.drain(ctx);
    }

    /// Whether the stack is crashed and awaiting a restart.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Applies a node-level fault to this stack.
    ///
    /// - [`NodeFault::CacheWipe`]: cached (unpinned) chunks vanish;
    ///   published content and everything else survive.
    /// - [`NodeFault::Crash`]: all volatile state is lost — transport
    ///   connections, fetch bookkeeping, queued packets, service
    ///   registrations, cached chunks — and the stack goes down, dropping
    ///   every upcall until it restarts.
    /// - [`NodeFault::Restart`]: the stack comes back empty-handed and
    ///   re-runs every app's [`App::on_start`] (re-arming timers and
    ///   re-registering services), exactly like a fresh boot.
    pub fn handle_fault(&mut self, ctx: &mut SimContext<'_, XiaPacket>, fault: NodeFault) {
        match fault {
            NodeFault::CacheWipe => {
                self.store.wipe();
                for idx in 0..self.apps.len() {
                    self.with_app(ctx, idx, |app, hctx| app.on_fault(hctx, fault));
                }
                self.drain(ctx);
            }
            NodeFault::Crash => {
                self.down = true;
                self.mux.reset();
                self.owners.clear();
                self.fetchers.clear();
                self.pending.clear();
                self.outbox.clear();
                self.meta.services.clear();
                self.store.wipe();
                for idx in 0..self.apps.len() {
                    self.with_app(ctx, idx, |app, hctx| app.on_fault(hctx, fault));
                }
                // No drain: anything apps tried to emit died with the node.
                self.pending.clear();
                self.outbox.clear();
                // Cache/server trace logs died with the node too.
                let _ = self.store.take_evicted();
                let _ = self.server.take_served();
            }
            NodeFault::Restart => {
                if !self.down {
                    return;
                }
                self.down = false;
                for idx in 0..self.apps.len() {
                    self.with_app(ctx, idx, |app, hctx| app.on_fault(hctx, fault));
                }
                self.start(ctx);
            }
            NodeFault::CacheResize { capacity } => {
                self.store.resize(capacity);
                for idx in 0..self.apps.len() {
                    self.with_app(ctx, idx, |app, hctx| app.on_fault(hctx, fault));
                }
                // Draining flushes the squeeze's evictions into the trace.
                self.drain(ctx);
            }
            NodeFault::SlowService { .. } => {
                // Host state is untouched; apps model the degraded rate.
                for idx in 0..self.apps.len() {
                    self.with_app(ctx, idx, |app, hctx| app.on_fault(hctx, fault));
                }
                self.drain(ctx);
            }
        }
    }

    /// Handles a packet destined to this stack.
    pub fn handle_packet(
        &mut self,
        ctx: &mut SimContext<'_, XiaPacket>,
        link: LinkId,
        pkt: XiaPacket,
    ) {
        if self.down {
            return;
        }
        match &pkt.l4 {
            L4::Beacon(beacon) => {
                let beacon = beacon.clone();
                for idx in 0..self.apps.len() {
                    self.with_app(ctx, idx, |app, hctx| app.on_beacon(hctx, link, &beacon));
                }
            }
            L4::Control {
                service,
                token,
                body,
            } => {
                let (service, token, body) = (*service, *token, body.clone());
                let from = pkt.src.clone();
                for idx in 0..self.apps.len() {
                    self.with_app(ctx, idx, |app, hctx| {
                        app.on_control(hctx, from.clone(), service, token, &body)
                    });
                }
            }
            L4::Segment(_) => {
                let local = self.meta.local_dag();
                let mut env = HostEnv {
                    sim: ctx,
                    outbox: &mut self.outbox,
                    pending: &mut self.pending,
                };
                self.mux.on_packet(&mut env, pkt, local);
            }
        }
        self.drain(ctx);
    }

    /// Handles a timer belonging to this stack. Returns `false` if the key
    /// is not recognized.
    pub fn handle_timer(&mut self, ctx: &mut SimContext<'_, XiaPacket>, key: TimerKey) -> bool {
        if self.down {
            // A crashed node's timers die with it; on_start re-arms app
            // timers after the restart.
            return true;
        }
        if key & (0xFFFF << 48) == xia_transport::TIMER_TAG {
            let mut env = HostEnv {
                sim: ctx,
                outbox: &mut self.outbox,
                pending: &mut self.pending,
            };
            self.mux.on_timer(&mut env, key);
            self.drain(ctx);
            return true;
        }
        if key & (0xFFFF << 48) == APP_TIMER_TAG {
            let idx = ((key >> 32) & 0xFFFF) as usize;
            let payload = key as u32 as u64;
            self.with_app(ctx, idx, |app, hctx| app.on_timer(hctx, payload));
            self.drain(ctx);
            return true;
        }
        false
    }

    /// Forwards a link state change to all apps.
    pub fn handle_link_event(
        &mut self,
        ctx: &mut SimContext<'_, XiaPacket>,
        link: LinkId,
        up: bool,
    ) {
        if self.down {
            return;
        }
        for idx in 0..self.apps.len() {
            self.with_app(ctx, idx, |app, hctx| app.on_link_event(hctx, link, up));
        }
        self.drain(ctx);
    }

    /// Runs `f` on app `idx` with a fresh context. Does not drain events.
    fn with_app(
        &mut self,
        ctx: &mut SimContext<'_, XiaPacket>,
        idx: usize,
        f: impl FnOnce(&mut dyn App, &mut HostCtx<'_, '_>),
    ) {
        let Some(slot) = self.apps.get_mut(idx) else {
            return;
        };
        let Some(mut app) = slot.take() else {
            return; // Reentrant dispatch; skip.
        };
        let mut hctx = HostCtx {
            sim: ctx,
            mux: &mut self.mux,
            store: &mut self.store,
            meta: &mut self.meta,
            owners: &mut self.owners,
            fetchers: &mut self.fetchers,
            pending: &mut self.pending,
            outbox: &mut self.outbox,
            app_idx: idx,
        };
        f(app.as_mut(), &mut hctx);
        self.apps[idx] = Some(app);
    }

    fn apply_server_actions(
        &mut self,
        ctx: &mut SimContext<'_, XiaPacket>,
        actions: Vec<ServerAction>,
    ) {
        for action in actions {
            let mut env = HostEnv {
                sim: ctx,
                outbox: &mut self.outbox,
                pending: &mut self.pending,
            };
            match action {
                ServerAction::Send(conn, data) => {
                    let _ = self.mux.send(&mut env, conn, data);
                }
                ServerAction::Close(conn) => {
                    let _ = self.mux.close(&mut env, conn);
                }
                ServerAction::Abort(conn) => self.mux.abort(&mut env, conn),
            }
        }
    }

    /// Processes queued transport events until none remain.
    fn drain(&mut self, ctx: &mut SimContext<'_, XiaPacket>) {
        while let Some(event) = self.pending.pop_front() {
            self.route_event(ctx, event);
        }
        self.flush_trace(ctx);
    }

    /// Flushes the store's and server's pending trace logs into the
    /// flight recorder. The take-calls are cheap no-ops when the logs are
    /// empty (the common case) and keep the logs bounded even when
    /// tracing is off.
    fn flush_trace(&mut self, ctx: &mut SimContext<'_, XiaPacket>) {
        use simnet::{Tag, TraceEvent};
        let evicted = self.store.take_evicted();
        let evicted_dropped = self.store.take_evicted_dropped();
        let served = self.server.take_served();
        if !util::trace_compiled() || !ctx.tracing() {
            return;
        }
        for cid in evicted {
            ctx.trace(TraceEvent::ChunkEvicted {
                chunk: Tag::of(cid.id()),
            });
        }
        if evicted_dropped > 0 {
            // Fleet-scale churn can evict faster than the bounded log can
            // be drained; surface the shortfall instead of losing it.
            ctx.trace(TraceEvent::EvictOverflow {
                dropped: evicted_dropped,
            });
        }
        for (cid, bytes) in served {
            ctx.trace(TraceEvent::ChunkServed {
                chunk: Tag::of(cid.id()),
                bytes,
            });
        }
    }

    fn route_event(&mut self, ctx: &mut SimContext<'_, XiaPacket>, event: TransportEvent) {
        match &event {
            TransportEvent::Incoming { conn, .. } => {
                self.owners.insert(*conn, Owner::Server);
                self.server.on_incoming(*conn);
            }
            TransportEvent::Connected { conn, .. } => match self.owners.get(conn) {
                Some(Owner::Fetch(_)) => {
                    if let Some(st) = self.fetchers.get(conn) {
                        let req = st.fetcher.request_bytes();
                        let mut env = HostEnv {
                            sim: ctx,
                            outbox: &mut self.outbox,
                            pending: &mut self.pending,
                        };
                        let _ = self.mux.send(&mut env, *conn, req);
                    }
                }
                Some(Owner::App(i)) => {
                    let i = *i;
                    self.with_app(ctx, i, |app, hctx| app.on_transport_event(hctx, &event));
                }
                _ => {}
            },
            TransportEvent::Data { conn, data } => match self.owners.get(conn) {
                Some(Owner::Server) => {
                    let actions = self.server.on_data(*conn, data, &mut self.store);
                    self.apply_server_actions(ctx, actions);
                }
                Some(Owner::Fetch(i)) => {
                    let (i, conn, data) = (*i, *conn, data.clone());
                    self.advance_fetch(ctx, i, conn, &data);
                }
                Some(Owner::App(i)) => {
                    let i = *i;
                    self.with_app(ctx, i, |app, hctx| app.on_transport_event(hctx, &event));
                }
                None => {}
            },
            TransportEvent::PeerClosed { conn } => match self.owners.get(conn) {
                Some(Owner::Fetch(i)) => {
                    let (i, conn) = (*i, *conn);
                    let unfinished = self.fetchers.get_mut(&conn).and_then(|st| {
                        let was = !st.done;
                        st.done = true;
                        was.then(|| (st.handle, st.fetcher.cid()))
                    });
                    if let Some((handle, cid)) = unfinished {
                        // Truncated response: the responder closed early.
                        let mut env = HostEnv {
                            sim: ctx,
                            outbox: &mut self.outbox,
                            pending: &mut self.pending,
                        };
                        let _ = self.mux.close(&mut env, conn);
                        self.with_app(ctx, i, |app, hctx| {
                            app.on_fetch_complete(hctx, handle, cid, FetchResult::Failed)
                        });
                    }
                }
                Some(Owner::App(i)) => {
                    let i = *i;
                    self.with_app(ctx, i, |app, hctx| app.on_transport_event(hctx, &event));
                }
                _ => {}
            },
            TransportEvent::Closed { conn } | TransportEvent::Failed { conn, .. } => {
                let failed = matches!(event, TransportEvent::Failed { .. });
                match self.owners.remove(conn) {
                    Some(Owner::Server) => self.server.on_gone(*conn),
                    Some(Owner::Fetch(i)) => {
                        if let Some(st) = self.fetchers.remove(conn) {
                            if !st.done && failed {
                                let (handle, cid) = (st.handle, st.fetcher.cid());
                                self.with_app(ctx, i, |app, hctx| {
                                    app.on_fetch_complete(hctx, handle, cid, FetchResult::Failed)
                                });
                            } else if !st.done {
                                // Clean close without a complete body.
                                let (handle, cid) = (st.handle, st.fetcher.cid());
                                self.with_app(ctx, i, |app, hctx| {
                                    app.on_fetch_complete(hctx, handle, cid, FetchResult::Failed)
                                });
                            }
                        }
                    }
                    Some(Owner::App(i)) => {
                        self.with_app(ctx, i, |app, hctx| app.on_transport_event(hctx, &event));
                    }
                    None => {}
                }
            }
        }
    }

    fn advance_fetch(
        &mut self,
        ctx: &mut SimContext<'_, XiaPacket>,
        app_idx: usize,
        conn: ConnId,
        data: &Bytes,
    ) {
        let Some(st) = self.fetchers.get_mut(&conn) else {
            return;
        };
        if st.done {
            return;
        }
        let progress = st.fetcher.on_data(data);
        match progress {
            FetchProgress::InProgress => {}
            FetchProgress::Complete(bytes) => {
                st.done = true;
                let (handle, cid) = (st.handle, st.fetcher.cid());
                if self.meta.cache_fetched {
                    self.store.insert(cid, bytes.clone());
                }
                let mut env = HostEnv {
                    sim: ctx,
                    outbox: &mut self.outbox,
                    pending: &mut self.pending,
                };
                let _ = self.mux.close(&mut env, conn);
                self.with_app(ctx, app_idx, |app, hctx| {
                    app.on_fetch_complete(hctx, handle, cid, FetchResult::Complete(bytes))
                });
            }
            FetchProgress::NotFound => {
                st.done = true;
                let (handle, cid) = (st.handle, st.fetcher.cid());
                let mut env = HostEnv {
                    sim: ctx,
                    outbox: &mut self.outbox,
                    pending: &mut self.pending,
                };
                let _ = self.mux.close(&mut env, conn);
                self.with_app(ctx, app_idx, |app, hctx| {
                    app.on_fetch_complete(hctx, handle, cid, FetchResult::NotFound)
                });
            }
            FetchProgress::Corrupt => {
                st.done = true;
                let (handle, cid) = (st.handle, st.fetcher.cid());
                let mut env = HostEnv {
                    sim: ctx,
                    outbox: &mut self.outbox,
                    pending: &mut self.pending,
                };
                self.mux.abort(&mut env, conn);
                self.with_app(ctx, app_idx, |app, hctx| {
                    app.on_fetch_complete(hctx, handle, cid, FetchResult::Failed)
                });
            }
        }
    }
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("hid", &self.meta.hid)
            .field("nid", &self.meta.nid)
            .field("apps", &self.apps.len())
            .field("connections", &self.mux.active_connections())
            .finish()
    }
}

/// A stub end host: consumes packets its stack wants, drops the rest,
/// and sends everything its stack emits out the primary link.
#[derive(Debug)]
pub struct EndHost {
    host: Host,
    /// Packets that arrived but were not for this host.
    pub stray_packets: u64,
    /// Packets the stack emitted while no primary link was attached
    /// (transmitting into a coverage gap).
    pub dropped_no_link: u64,
}

impl EndHost {
    /// Wraps a host stack as a simulator node.
    pub fn new(host: Host) -> Self {
        EndHost {
            host,
            stray_packets: 0,
            dropped_no_link: 0,
        }
    }

    /// The inner host stack.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Mutable access to the inner host stack.
    pub fn host_mut(&mut self) -> &mut Host {
        &mut self.host
    }

    /// Sends queued stack emissions out the primary link.
    fn flush(&mut self, ctx: &mut SimContext<'_, XiaPacket>) {
        for pkt in self.host.take_outbox() {
            match self.host.primary_link() {
                Some(link) => ctx.send(link, pkt),
                None => self.dropped_no_link += 1,
            }
        }
    }
}

impl Node<XiaPacket> for EndHost {
    fn on_start(&mut self, ctx: &mut SimContext<'_, XiaPacket>) {
        self.host.start(ctx);
        self.flush(ctx);
    }

    fn on_packet(&mut self, ctx: &mut SimContext<'_, XiaPacket>, link: LinkId, pkt: XiaPacket) {
        if self.host.wants_packet(&pkt) {
            self.host.handle_packet(ctx, link, pkt);
            self.flush(ctx);
        } else {
            self.stray_packets += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut SimContext<'_, XiaPacket>, key: TimerKey) {
        let _ = self.host.handle_timer(ctx, key);
        self.flush(ctx);
    }

    fn on_link_event(&mut self, ctx: &mut SimContext<'_, XiaPacket>, link: LinkId, up: bool) {
        self.host.handle_link_event(ctx, link, up);
        self.flush(ctx);
    }

    fn on_fault(&mut self, ctx: &mut SimContext<'_, XiaPacket>, fault: NodeFault) {
        self.host.handle_fault(ctx, fault);
        self.flush(ctx);
    }
}
