//! The application trait hosted by a [`crate::Host`] stack.

use std::any::Any;

use simnet::{LinkId, NodeFault};
use util::bytes::Bytes;
use xia_addr::{Dag, Xid};
use xia_transport::TransportEvent;
use xia_wire::Beacon;

use crate::ctx::HostCtx;

/// Result of an [`HostCtx::xfetch_chunk`] delegation.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchResult {
    /// The chunk arrived and verified against its CID.
    Complete(Bytes),
    /// The responder does not hold the chunk.
    NotFound,
    /// The transfer failed (reset, timeout, truncation, corruption).
    Failed,
}

/// An application (or network function) running on a host stack.
///
/// Applications receive upcalls from the host: transport events for
/// connections they own, completions for chunk fetches they issued,
/// control datagrams, beacons heard on any interface, link state changes
/// and their own timers. All interaction with the world goes through the
/// [`HostCtx`] passed to each callback.
#[allow(unused_variables)]
pub trait App: Any {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {}

    /// Transport event for a connection owned by this app (opened with
    /// [`HostCtx::connect`]).
    fn on_transport_event(&mut self, ctx: &mut HostCtx<'_, '_>, event: &TransportEvent) {}

    /// A chunk fetch issued with [`HostCtx::xfetch_chunk`] finished.
    fn on_fetch_complete(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        handle: u64,
        cid: Xid,
        result: FetchResult,
    ) {
    }

    /// A control datagram arrived (staging signaling and similar).
    fn on_control(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        from: Dag,
        service: Xid,
        token: u64,
        body: &Bytes,
    ) {
    }

    /// A network beacon was heard on `link` (the sensor interface).
    fn on_beacon(&mut self, ctx: &mut HostCtx<'_, '_>, link: LinkId, beacon: &Beacon) {}

    /// An attached link changed state.
    fn on_link_event(&mut self, ctx: &mut HostCtx<'_, '_>, link: LinkId, up: bool) {}

    /// A timer armed with [`HostCtx::set_app_timer`] expired.
    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, key: u64) {}

    /// A node-level fault hit the hosting stack (fault injection). On
    /// [`NodeFault::Crash`] apps should drop volatile bookkeeping; the
    /// host re-runs [`App::on_start`] after the matching
    /// [`NodeFault::Restart`], so timers and service registrations come
    /// back by the normal path.
    fn on_fault(&mut self, ctx: &mut HostCtx<'_, '_>, fault: NodeFault) {}
}
