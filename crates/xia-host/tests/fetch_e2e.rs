//! End-to-end chunk fetches between two host stacks over simulated links.

use simnet::{LinkConfig, SimDuration, SimTime, Simulator};
use util::bytes::Bytes;
use xcache::Manifest;
use xia_addr::{Dag, Principal, Xid};
use xia_host::{App, EndHost, FetchResult, Host, HostConfig, HostCtx};
use xia_wire::XiaPacket;

/// Fetches a list of chunk DAGs sequentially, recording results.
struct SeqFetcher {
    dags: Vec<Dag>,
    next: usize,
    completions: Vec<(Xid, FetchResult, SimTime)>,
}

impl SeqFetcher {
    fn new(dags: Vec<Dag>) -> Self {
        SeqFetcher {
            dags,
            next: 0,
            completions: Vec::new(),
        }
    }

    fn fetch_next(&mut self, ctx: &mut HostCtx<'_, '_>) {
        if self.next < self.dags.len() {
            let dag = self.dags[self.next].clone();
            self.next += 1;
            ctx.xfetch_chunk(dag);
        }
    }
}

impl App for SeqFetcher {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        self.fetch_next(ctx);
    }

    fn on_fetch_complete(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        _handle: u64,
        cid: Xid,
        result: FetchResult,
    ) {
        self.completions.push((cid, result, ctx.now()));
        self.fetch_next(ctx);
    }
}

struct World {
    sim: Simulator<XiaPacket>,
    client: simnet::NodeId,
    server: simnet::NodeId,
    link: simnet::LinkId,
    manifest: Manifest,
    content: Bytes,
}

fn build_world(content_len: usize, chunk_size: usize, link: LinkConfig) -> World {
    let mut sim = Simulator::new(11);
    let server_hid = Xid::new_random(Principal::Hid, 1);
    let client_hid = Xid::new_random(Principal::Hid, 2);
    let nid = Xid::new_random(Principal::Nid, 9);

    let mut server_host = Host::new(HostConfig::new(server_hid));
    let content = Bytes::from(
        (0..content_len)
            .map(|i| (i % 249) as u8)
            .collect::<Vec<u8>>(),
    );
    let manifest = server_host.publish_content(&content, chunk_size);

    let dags: Vec<Dag> = manifest
        .chunks
        .iter()
        .map(|cid| Dag::cid_with_fallback(*cid, nid, server_hid))
        .collect();

    let mut client_host = Host::new(HostConfig::new(client_hid));
    client_host.add_app(Box::new(SeqFetcher::new(dags)));

    let server = sim.add_node(Box::new(EndHost::new(server_host)));
    let client = sim.add_node(Box::new(EndHost::new(client_host)));
    let l = sim.add_link(client, server, link);
    sim.node_mut::<EndHost>(server)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid), Some(l));
    sim.node_mut::<EndHost>(client)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid), Some(l));
    World {
        sim,
        client,
        server,
        link: l,
        manifest,
        content,
    }
}

fn completions(
    world: &Simulator<XiaPacket>,
    node: simnet::NodeId,
) -> &[(Xid, FetchResult, SimTime)] {
    &world
        .node::<EndHost>(node)
        .unwrap()
        .host()
        .app::<SeqFetcher>(0)
        .unwrap()
        .completions
}

#[test]
fn fetches_all_chunks_and_reassembles() {
    let mut w = build_world(
        1_000_000,
        200_000,
        LinkConfig::wired(100_000_000, SimDuration::from_millis(5)),
    );
    w.sim.run();
    let done = completions(&w.sim, w.client);
    assert_eq!(done.len(), 5);
    let mut body = Vec::new();
    for (i, (cid, result, _)) in done.iter().enumerate() {
        assert_eq!(*cid, w.manifest.chunks[i], "in manifest order");
        match result {
            FetchResult::Complete(bytes) => body.extend_from_slice(bytes),
            other => panic!("chunk {i} failed: {other:?}"),
        }
    }
    assert_eq!(Bytes::from(body), w.content);
    // Server served every chunk.
    let server = w.sim.node::<EndHost>(w.server).unwrap().host();
    assert_eq!(server.server().served(), 5);
    // All connections torn down.
    assert_eq!(server.active_connections(), 0);
    assert_eq!(
        w.sim
            .node::<EndHost>(w.client)
            .unwrap()
            .host()
            .active_connections(),
        0
    );
}

#[test]
fn fetch_over_lossy_wireless_link_completes() {
    let mut w = build_world(
        400_000,
        100_000,
        LinkConfig::wireless(30_000_000, SimDuration::from_millis(2), 0.27),
    );
    w.sim.run();
    let done = completions(&w.sim, w.client);
    assert_eq!(done.len(), 4);
    assert!(done
        .iter()
        .all(|(_, r, _)| matches!(r, FetchResult::Complete(_))));
}

#[test]
fn missing_chunk_reports_not_found() {
    let mut sim = Simulator::new(3);
    let server_hid = Xid::new_random(Principal::Hid, 1);
    let client_hid = Xid::new_random(Principal::Hid, 2);
    let nid = Xid::new_random(Principal::Nid, 9);
    let server_host = Host::new(HostConfig::new(server_hid));
    let missing = Xid::for_content(b"never published");
    let dag = Dag::cid_with_fallback(missing, nid, server_hid);
    let mut client_host = Host::new(HostConfig::new(client_hid));
    client_host.add_app(Box::new(SeqFetcher::new(vec![dag])));
    let server = sim.add_node(Box::new(EndHost::new(server_host)));
    let client = sim.add_node(Box::new(EndHost::new(client_host)));
    let l = sim.add_link(
        client,
        server,
        LinkConfig::wired(10_000_000, SimDuration::from_millis(1)),
    );
    sim.node_mut::<EndHost>(server)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid), Some(l));
    sim.node_mut::<EndHost>(client)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid), Some(l));
    sim.run();
    let done = completions(&sim, client);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].1, FetchResult::NotFound);
}

#[test]
fn client_side_caching_stores_fetched_chunks() {
    let mut sim = Simulator::new(5);
    let server_hid = Xid::new_random(Principal::Hid, 1);
    let client_hid = Xid::new_random(Principal::Hid, 2);
    let nid = Xid::new_random(Principal::Nid, 9);
    let mut server_host = Host::new(HostConfig::new(server_hid));
    let content = Bytes::from(vec![42u8; 50_000]);
    let manifest = server_host.publish_content(&content, 25_000);
    let dags: Vec<Dag> = manifest
        .chunks
        .iter()
        .map(|c| Dag::cid_with_fallback(*c, nid, server_hid))
        .collect();
    let mut config = HostConfig::new(client_hid);
    config.cache_fetched = true;
    let mut client_host = Host::new(config);
    client_host.add_app(Box::new(SeqFetcher::new(dags)));
    let server = sim.add_node(Box::new(EndHost::new(server_host)));
    let client = sim.add_node(Box::new(EndHost::new(client_host)));
    let l = sim.add_link(
        client,
        server,
        LinkConfig::wired(10_000_000, SimDuration::from_millis(1)),
    );
    sim.node_mut::<EndHost>(server)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid), Some(l));
    sim.node_mut::<EndHost>(client)
        .unwrap()
        .host_mut()
        .set_attachment(Some(nid), Some(l));
    sim.run();
    let client_store = sim.node::<EndHost>(client).unwrap().host().store();
    for cid in &manifest.chunks {
        assert!(client_store.contains(cid), "fetched chunk cached locally");
    }
}

/// A fetch across a link that dies mid-transfer eventually completes after
/// the link comes back (transport RTO recovery), exercising the vehicular
/// disconnection path.
#[test]
fn fetch_survives_link_outage() {
    let mut w = build_world(
        600_000,
        600_000,
        LinkConfig::wired(20_000_000, SimDuration::from_millis(2)),
    );
    // Kill the only link at 100 ms for 3 seconds.
    let link = w.link;
    w.sim
        .schedule_link_state(SimTime::from_micros(100_000), link, false);
    w.sim
        .schedule_link_state(SimTime::from_micros(3_100_000), link, true);
    w.sim.run();
    let done = completions(&w.sim, w.client);
    assert_eq!(done.len(), 1);
    assert!(matches!(done[0].1, FetchResult::Complete(_)));
    // Completion happened after the outage ended.
    assert!(done[0].2 > SimTime::from_micros(3_100_000));
}
