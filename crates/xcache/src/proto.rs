//! The chunk-fetch wire protocol spoken over a transport connection.
//!
//! A fetch is one short-lived reliable connection (the paper's *XChunkP*
//! pattern): the client connects to the chunk's DAG (`CID | NID : HID`),
//! sends a [`ChunkRequest`] frame, and the serving XCache answers with a
//! response header followed by the raw chunk bytes, then closes.

use util::bytes::{Bytes, BytesMut};
use xia_addr::{Principal, Xid};

/// Frame tag of a chunk request.
const TAG_REQUEST: u8 = 0x01;
/// Frame tag of a chunk response header.
const TAG_RESPONSE: u8 = 0x02;

/// Wire length of a request frame.
pub(crate) const REQUEST_LEN: usize = 1 + 1 + 20;
/// Wire length of a response header frame.
pub(crate) const RESPONSE_HDR_LEN: usize = 1 + 1 + 1 + 20 + 8;

/// A request for one chunk by CID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRequest {
    /// The requested content identifier.
    pub cid: Xid,
}

impl ChunkRequest {
    /// Encodes the request frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REQUEST_LEN);
        b.put_u8(TAG_REQUEST);
        b.put_u8(principal_code(self.cid.principal()));
        b.put_slice(self.cid.id());
        b.freeze()
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] on a bad tag, unknown principal, or short
    /// frame.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        if buf.len() < REQUEST_LEN {
            return Err(ProtoError::Truncated);
        }
        if buf[0] != TAG_REQUEST {
            return Err(ProtoError::BadTag);
        }
        let principal = principal_from_code(buf[1]).ok_or(ProtoError::BadPrincipal)?;
        let mut id = [0u8; 20];
        id.copy_from_slice(&buf[2..22]);
        Ok(ChunkRequest {
            cid: Xid::new(principal, id),
        })
    }
}

/// The header preceding chunk bytes in a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkResponseHeader {
    /// The CID being answered.
    pub cid: Xid,
    /// Whether the chunk was found; if false, `len` is zero and no body
    /// follows.
    pub found: bool,
    /// Body length in bytes.
    pub len: u64,
}

impl ChunkResponseHeader {
    /// Encodes the response header frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(RESPONSE_HDR_LEN);
        b.put_u8(TAG_RESPONSE);
        b.put_u8(u8::from(self.found));
        b.put_u8(principal_code(self.cid.principal()));
        b.put_slice(self.cid.id());
        b.put_u64(self.len);
        b.freeze()
    }

    /// Decodes a response header frame.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] on a bad tag, unknown principal, or short
    /// frame.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        if buf.len() < RESPONSE_HDR_LEN {
            return Err(ProtoError::Truncated);
        }
        if buf[0] != TAG_RESPONSE {
            return Err(ProtoError::BadTag);
        }
        let found = buf[1] != 0;
        let principal = principal_from_code(buf[2]).ok_or(ProtoError::BadPrincipal)?;
        let mut id = [0u8; 20];
        id.copy_from_slice(&buf[3..23]);
        let len = buf[23..31]
            .iter()
            .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
        Ok(ChunkResponseHeader {
            cid: Xid::new(principal, id),
            found,
            len,
        })
    }
}

fn principal_code(p: Principal) -> u8 {
    match p {
        Principal::Cid => 0,
        Principal::Hid => 1,
        Principal::Nid => 2,
        Principal::Sid => 3,
    }
}

fn principal_from_code(c: u8) -> Option<Principal> {
    match c {
        0 => Some(Principal::Cid),
        1 => Some(Principal::Hid),
        2 => Some(Principal::Nid),
        3 => Some(Principal::Sid),
        _ => None,
    }
}

/// Errors decoding protocol frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Not enough bytes for the frame.
    Truncated,
    /// Unexpected frame tag.
    BadTag,
    /// Unknown principal code.
    BadPrincipal,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ProtoError::Truncated => "truncated protocol frame",
            ProtoError::BadTag => "unexpected frame tag",
            ProtoError::BadPrincipal => "unknown principal code",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = ChunkRequest {
            cid: Xid::for_content(b"payload"),
        };
        let wire = req.encode();
        assert_eq!(wire.len(), REQUEST_LEN);
        assert_eq!(ChunkRequest::decode(&wire).unwrap(), req);
    }

    #[test]
    fn response_roundtrip_found_and_missing() {
        for (found, len) in [(true, 2_000_000u64), (false, 0)] {
            let hdr = ChunkResponseHeader {
                cid: Xid::for_content(b"x"),
                found,
                len,
            };
            let wire = hdr.encode();
            assert_eq!(wire.len(), RESPONSE_HDR_LEN);
            assert_eq!(ChunkResponseHeader::decode(&wire).unwrap(), hdr);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(ChunkRequest::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(
            ChunkRequest::decode(&[0xFF; REQUEST_LEN]),
            Err(ProtoError::BadTag)
        );
        let mut bad = ChunkRequest {
            cid: Xid::for_content(b"x"),
        }
        .encode()
        .to_vec();
        bad[1] = 200;
        assert_eq!(ChunkRequest::decode(&bad), Err(ProtoError::BadPrincipal));
        assert_eq!(
            ChunkResponseHeader::decode(&[TAG_RESPONSE; 4]),
            Err(ProtoError::Truncated)
        );
    }

    #[test]
    fn all_principals_roundtrip() {
        for p in Principal::ALL {
            let req = ChunkRequest {
                cid: Xid::new_random(p, 5),
            };
            assert_eq!(ChunkRequest::decode(&req.encode()).unwrap(), req);
        }
    }
}
