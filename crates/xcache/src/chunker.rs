//! Splitting content into self-certifying chunks.

use util::bytes::Bytes;
use util::json::{FromJson, Json, JsonError, ToJson};
use xia_addr::Xid;

/// A manifest describing one published content object (e.g. a file): the
/// ordered list of chunk CIDs a client must fetch.
///
/// In the paper's workflow the client application "contacts the server
/// application to retrieve the content objects' DAG information"; the
/// manifest is that information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Ordered chunk CIDs.
    pub chunks: Vec<Xid>,
    /// Nominal chunk size in bytes (the last chunk may be smaller).
    pub chunk_size: usize,
    /// Total content length in bytes.
    pub total_len: u64,
}

impl Manifest {
    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the manifest has no chunks.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}

impl ToJson for Manifest {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("chunks".into(), self.chunks.to_json()),
            ("chunk_size".into(), self.chunk_size.to_json()),
            ("total_len".into(), self.total_len.to_json()),
        ])
    }
}

impl FromJson for Manifest {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Manifest {
            chunks: Vec::from_json(v.field("chunks")?)?,
            chunk_size: usize::from_json(v.field("chunk_size")?)?,
            total_len: u64::from_json(v.field("total_len")?)?,
        })
    }
}

/// Splits `content` into chunks of `chunk_size` bytes (the last chunk holds
/// the remainder) and derives each chunk's CID from its payload.
///
/// Returns the manifest and the chunk payloads, ready to publish.
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
///
/// # Examples
///
/// ```
/// use util::bytes::Bytes;
/// let content = Bytes::from(vec![7u8; 5000]);
/// let (manifest, chunks) = xcache::chunker::chunk_content(&content, 2048);
/// assert_eq!(manifest.len(), 3);
/// assert_eq!(chunks[2].1.len(), 5000 - 2 * 2048);
/// ```
pub fn chunk_content(content: &Bytes, chunk_size: usize) -> (Manifest, Vec<(Xid, Bytes)>) {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut chunks = Vec::with_capacity(content.len().div_ceil(chunk_size));
    let mut offset = 0;
    while offset < content.len() {
        let end = (offset + chunk_size).min(content.len());
        let payload = content.slice(offset..end);
        let cid = Xid::for_content(&payload);
        chunks.push((cid, payload));
        offset = end;
    }
    let manifest = Manifest {
        chunks: chunks.iter().map(|(cid, _)| *cid).collect(),
        chunk_size,
        total_len: content.len() as u64,
    };
    (manifest, chunks)
}

/// Reassembles content from chunks in manifest order, verifying each
/// chunk's CID against its payload.
///
/// # Errors
///
/// Returns the index of the first missing or corrupt chunk.
pub fn reassemble(
    manifest: &Manifest,
    lookup: impl Fn(&Xid) -> Option<Bytes>,
) -> Result<Bytes, usize> {
    let mut out = Vec::with_capacity(manifest.total_len as usize);
    for (i, cid) in manifest.chunks.iter().enumerate() {
        let chunk = lookup(cid).ok_or(i)?;
        if Xid::for_content(&chunk) != *cid {
            return Err(i);
        }
        out.extend_from_slice(&chunk);
    }
    Ok(Bytes::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn content(len: usize) -> Bytes {
        Bytes::from((0..len).map(|i| (i * 31 % 253) as u8).collect::<Vec<u8>>())
    }

    #[test]
    fn exact_multiple_chunks() {
        let c = content(4096);
        let (m, chunks) = chunk_content(&c, 1024);
        assert_eq!(m.len(), 4);
        assert!(chunks.iter().all(|(_, d)| d.len() == 1024));
        assert_eq!(m.total_len, 4096);
    }

    #[test]
    fn remainder_chunk() {
        let c = content(2500);
        let (m, chunks) = chunk_content(&c, 1024);
        assert_eq!(m.len(), 3);
        assert_eq!(chunks[2].1.len(), 2500 - 2048);
    }

    #[test]
    fn empty_content_has_no_chunks() {
        let (m, chunks) = chunk_content(&Bytes::new(), 1024);
        assert!(m.is_empty());
        assert!(chunks.is_empty());
        assert_eq!(m.total_len, 0);
    }

    #[test]
    fn cids_are_content_derived() {
        let c = content(3000);
        let (_, chunks) = chunk_content(&c, 1000);
        for (cid, data) in &chunks {
            assert_eq!(*cid, Xid::for_content(data));
        }
        // Identical chunks share a CID (deduplication property).
        let dup = Bytes::from(vec![5u8; 2000]);
        let (m, _) = chunk_content(&dup, 1000);
        assert_eq!(m.chunks[0], m.chunks[1]);
    }

    #[test]
    fn reassemble_roundtrip() {
        let c = content(5555);
        let (m, chunks) = chunk_content(&c, 512);
        let map: HashMap<Xid, Bytes> = chunks.into_iter().collect();
        let back = reassemble(&m, |cid| map.get(cid).cloned()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn reassemble_reports_missing_chunk() {
        let c = content(3000);
        let (m, chunks) = chunk_content(&c, 1000);
        let mut map: HashMap<Xid, Bytes> = chunks.into_iter().collect();
        map.remove(&m.chunks[1]);
        assert_eq!(reassemble(&m, |cid| map.get(cid).cloned()), Err(1));
    }

    #[test]
    fn reassemble_detects_corruption() {
        let c = content(2000);
        let (m, chunks) = chunk_content(&c, 1000);
        let mut map: HashMap<Xid, Bytes> = chunks.into_iter().collect();
        map.insert(m.chunks[0], Bytes::from_static(b"corrupted"));
        assert_eq!(reassemble(&m, |cid| map.get(cid).cloned()), Err(0));
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_size_panics() {
        let _ = chunk_content(&Bytes::from_static(b"x"), 0);
    }
}
