//! Sans-IO chunk service endpoints.
//!
//! [`ChunkServer`] is the serving side embedded in every XCache (origin
//! servers, edge caches, router caches): it parses [`ChunkRequest`]s off
//! accepted connections and answers from a [`ChunkStore`].
//! [`ChunkFetcher`] is the client side of one fetch: it produces the
//! request bytes and consumes the response stream, verifying the chunk's
//! content hash on completion.
//!
//! Both are pure state machines — the host stack moves bytes between them
//! and the transport.

use std::collections::BTreeMap;

use util::bytes::Bytes;
use xia_addr::Xid;
use xia_wire::ConnId;

use crate::proto::{ChunkRequest, ChunkResponseHeader, REQUEST_LEN, RESPONSE_HDR_LEN};
use crate::store::ChunkStore;

/// Output of the server state machine: what the host should do on which
/// connection.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerAction {
    /// Send bytes on the connection.
    Send(ConnId, Bytes),
    /// Close the send direction of the connection.
    Close(ConnId),
    /// Abort the connection (protocol violation).
    Abort(ConnId),
}

/// The serving side of the chunk protocol for one XCache.
#[derive(Debug, Default)]
pub struct ChunkServer {
    inbox: BTreeMap<ConnId, Vec<u8>>,
    served: u64,
    not_found: u64,
    /// (CID, bytes) pairs served since the last [`ChunkServer::take_served`],
    /// bounded by [`SERVED_LOG_CAP`].
    served_log: Vec<(Xid, u64)>,
}

/// Upper bound on the pending served-chunk log (drained by the host's
/// flight-recorder flush; entries beyond the cap are silently dropped).
const SERVED_LOG_CAP: usize = 4096;

impl ChunkServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        ChunkServer::default()
    }

    /// Chunks served successfully so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests answered "not found" so far.
    #[cfg(test)]
    pub(crate) fn not_found(&self) -> u64 {
        self.not_found
    }

    /// Registers a newly accepted connection.
    pub fn on_incoming(&mut self, conn: ConnId) {
        self.inbox.entry(conn).or_default();
    }

    /// Feeds received bytes from `conn`; answers once a full request frame
    /// has arrived.
    pub fn on_data(
        &mut self,
        conn: ConnId,
        data: &Bytes,
        store: &mut ChunkStore,
    ) -> Vec<ServerAction> {
        let Some(buf) = self.inbox.get_mut(&conn) else {
            return vec![ServerAction::Abort(conn)];
        };
        buf.extend_from_slice(data);
        if buf.len() < REQUEST_LEN {
            return Vec::new();
        }
        let req = match ChunkRequest::decode(buf) {
            Ok(r) => r,
            Err(_) => {
                self.inbox.remove(&conn);
                return vec![ServerAction::Abort(conn)];
            }
        };
        self.inbox.remove(&conn);
        match store.get(&req.cid) {
            Some(chunk) => {
                self.served += 1;
                if self.served_log.len() < SERVED_LOG_CAP {
                    self.served_log.push((req.cid, chunk.len() as u64));
                }
                let hdr = ChunkResponseHeader {
                    cid: req.cid,
                    found: true,
                    len: chunk.len() as u64,
                };
                vec![
                    ServerAction::Send(conn, hdr.encode()),
                    ServerAction::Send(conn, chunk),
                    ServerAction::Close(conn),
                ]
            }
            None => {
                self.not_found += 1;
                let hdr = ChunkResponseHeader {
                    cid: req.cid,
                    found: false,
                    len: 0,
                };
                vec![
                    ServerAction::Send(conn, hdr.encode()),
                    ServerAction::Close(conn),
                ]
            }
        }
    }

    /// Forgets a connection that closed or failed.
    pub fn on_gone(&mut self, conn: ConnId) {
        self.inbox.remove(&conn);
    }

    /// Drains the (CID, bytes) pairs served since the last call, in serve
    /// order. Costs nothing when nothing was served. The host flushes this
    /// into the flight recorder after each dispatch.
    pub fn take_served(&mut self) -> Vec<(Xid, u64)> {
        std::mem::take(&mut self.served_log)
    }
}

/// Progress of a client-side chunk fetch.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchProgress {
    /// More bytes are needed.
    InProgress,
    /// The responder does not have the chunk.
    NotFound,
    /// The chunk arrived and its content hash matches its CID.
    Complete(Bytes),
    /// The body did not match the CID, or the stream was malformed.
    Corrupt,
}

/// The client side of one chunk fetch over one connection.
#[derive(Debug)]
pub struct ChunkFetcher {
    cid: Xid,
    buf: Vec<u8>,
    header: Option<ChunkResponseHeader>,
    done: bool,
}

impl ChunkFetcher {
    /// Creates a fetcher for `cid`.
    pub fn new(cid: Xid) -> Self {
        ChunkFetcher {
            cid,
            buf: Vec::new(),
            header: None,
            done: false,
        }
    }

    /// The CID being fetched.
    pub fn cid(&self) -> Xid {
        self.cid
    }

    /// The request frame to send once connected.
    pub fn request_bytes(&self) -> Bytes {
        ChunkRequest { cid: self.cid }.encode()
    }

    /// Bytes of the body received so far (for partial-progress tracking
    /// across disconnections).
    #[cfg(test)]
    pub(crate) fn received_bytes(&self) -> usize {
        if self.header.is_some() {
            self.buf.len()
        } else {
            0
        }
    }

    /// Consumes response bytes; returns the new progress state.
    pub fn on_data(&mut self, data: &Bytes) -> FetchProgress {
        if self.done {
            return FetchProgress::Corrupt;
        }
        self.buf.extend_from_slice(data);
        if self.header.is_none() {
            if self.buf.len() < RESPONSE_HDR_LEN {
                return FetchProgress::InProgress;
            }
            match ChunkResponseHeader::decode(&self.buf) {
                Ok(hdr) => {
                    if !hdr.found {
                        self.done = true;
                        return FetchProgress::NotFound;
                    }
                    self.buf.drain(..RESPONSE_HDR_LEN);
                    self.header = Some(hdr);
                }
                Err(_) => {
                    self.done = true;
                    return FetchProgress::Corrupt;
                }
            }
        }
        let Some(hdr) = self.header.as_ref() else {
            // The block above either stored a header or returned early; a
            // missing header here means the stream state is unusable.
            self.done = true;
            return FetchProgress::Corrupt;
        };
        if (self.buf.len() as u64) < hdr.len {
            return FetchProgress::InProgress;
        }
        self.done = true;
        if self.buf.len() as u64 > hdr.len {
            return FetchProgress::Corrupt;
        }
        let body = Bytes::from(std::mem::take(&mut self.buf));
        if Xid::for_content(&body) != self.cid {
            return FetchProgress::Corrupt;
        }
        FetchProgress::Complete(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EvictionPolicy;
    use xia_addr::Principal;

    fn conn(port: u64) -> ConnId {
        ConnId {
            initiator: Xid::new_random(Principal::Hid, 1),
            port,
        }
    }

    fn store_with(data: &Bytes) -> (ChunkStore, Xid) {
        let mut s = ChunkStore::new(1 << 20, EvictionPolicy::Lru);
        let cid = Xid::for_content(data);
        s.publish(cid, data.clone());
        (s, cid)
    }

    #[test]
    fn served_chunk_roundtrips_through_fetcher() {
        let data = Bytes::from(vec![9u8; 5000]);
        let (mut store, cid) = store_with(&data);
        let mut server = ChunkServer::new();
        let mut fetcher = ChunkFetcher::new(cid);
        let c = conn(1);
        server.on_incoming(c);
        let actions = server.on_data(c, &fetcher.request_bytes(), &mut store);
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[2], ServerAction::Close(_)));
        // Stream server sends into the fetcher, fragmented arbitrarily.
        let mut wire = Vec::new();
        for a in &actions {
            if let ServerAction::Send(_, b) = a {
                wire.extend_from_slice(b);
            }
        }
        let mut progress = FetchProgress::InProgress;
        for piece in wire.chunks(777) {
            progress = fetcher.on_data(&Bytes::copy_from_slice(piece));
        }
        assert_eq!(progress, FetchProgress::Complete(data));
        assert_eq!(server.served(), 1);
    }

    #[test]
    fn missing_chunk_reports_not_found() {
        let mut store = ChunkStore::new(1024, EvictionPolicy::Lru);
        let mut server = ChunkServer::new();
        let cid = Xid::for_content(b"not there");
        let mut fetcher = ChunkFetcher::new(cid);
        let c = conn(2);
        server.on_incoming(c);
        let actions = server.on_data(c, &fetcher.request_bytes(), &mut store);
        assert_eq!(actions.len(), 2);
        let ServerAction::Send(_, hdr) = &actions[0] else {
            panic!("expected send");
        };
        assert_eq!(fetcher.on_data(hdr), FetchProgress::NotFound);
        assert_eq!(server.not_found(), 1);
    }

    #[test]
    fn fragmented_request_is_buffered() {
        let data = Bytes::from(vec![1u8; 100]);
        let (mut store, cid) = store_with(&data);
        let mut server = ChunkServer::new();
        let c = conn(3);
        server.on_incoming(c);
        let req = ChunkRequest { cid }.encode();
        let first = server.on_data(c, &req.slice(0..10), &mut store);
        assert!(first.is_empty(), "waits for the full frame");
        let rest = server.on_data(c, &req.slice(10..), &mut store);
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn corrupt_body_detected() {
        let cid = Xid::for_content(b"the real content");
        let mut fetcher = ChunkFetcher::new(cid);
        let hdr = ChunkResponseHeader {
            cid,
            found: true,
            len: 4,
        };
        let _ = fetcher.on_data(&hdr.encode());
        let progress = fetcher.on_data(&Bytes::from_static(b"evil"));
        assert_eq!(progress, FetchProgress::Corrupt);
    }

    #[test]
    fn malformed_request_aborts() {
        let mut store = ChunkStore::new(1024, EvictionPolicy::Lru);
        let mut server = ChunkServer::new();
        let c = conn(4);
        server.on_incoming(c);
        let garbage = Bytes::from(vec![0xEE; REQUEST_LEN]);
        let actions = server.on_data(c, &garbage, &mut store);
        assert_eq!(actions, vec![ServerAction::Abort(c)]);
    }

    #[test]
    fn data_on_unknown_conn_aborts() {
        let mut store = ChunkStore::new(1024, EvictionPolicy::Lru);
        let mut server = ChunkServer::new();
        let c = conn(5);
        let actions = server.on_data(c, &Bytes::from_static(b"hi"), &mut store);
        assert_eq!(actions, vec![ServerAction::Abort(c)]);
    }

    #[test]
    fn received_bytes_tracks_partial_progress() {
        let data = Bytes::from(vec![3u8; 1000]);
        let cid = Xid::for_content(&data);
        let mut fetcher = ChunkFetcher::new(cid);
        assert_eq!(fetcher.received_bytes(), 0);
        let hdr = ChunkResponseHeader {
            cid,
            found: true,
            len: 1000,
        };
        let _ = fetcher.on_data(&hdr.encode());
        let _ = fetcher.on_data(&data.slice(0..400));
        assert_eq!(fetcher.received_bytes(), 400);
    }
}
