//! XCache: XIA's network-layer chunk cache.
//!
//! XCache "implements XIA's native ICN support on both end hosts and
//! network appliances" (SoftStage §II-C). This crate provides:
//!
//! - [`store::ChunkStore`]: a bounded content store with LRU/FIFO/LFU
//!   eviction and pinned (published) content,
//! - [`chunker`]: splitting content objects into self-certifying chunks
//!   and the [`chunker::Manifest`] clients fetch,
//! - [`proto`]: the chunk request/response wire protocol,
//! - [`service`]: sans-IO server ([`service::ChunkServer`]) and client
//!   ([`service::ChunkFetcher`]) state machines that `xia-host` wires to
//!   the reliable transport.
//!
//! The SoftStage Staging VNF stages chunks *into* one of these stores so
//! mobile clients fetch them from the edge instead of the origin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunker;
pub mod proto;
pub mod service;
pub mod store;

pub use chunker::{chunk_content, Manifest};
pub use proto::{ChunkRequest, ChunkResponseHeader, ProtoError};
pub use service::{ChunkFetcher, ChunkServer, FetchProgress, ServerAction};
pub use store::{ChunkStore, EvictionPolicy, StoreStats};
