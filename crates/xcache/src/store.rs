//! The chunk content store with pluggable eviction.

use std::collections::BTreeMap;

use util::bytes::Bytes;
use xia_addr::Xid;

/// Eviction policy for unpinned chunks when the store exceeds capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least recently used chunk (default; what XCache's
    /// opportunistic router cache wants).
    #[default]
    Lru,
    /// Evict the oldest inserted chunk.
    Fifo,
    /// Evict the least frequently used chunk (ties broken by recency).
    Lfu,
}

#[derive(Debug, Clone)]
struct Entry {
    data: Bytes,
    /// Published content is pinned and never evicted.
    pinned: bool,
    inserted: u64,
    last_access: u64,
    hits: u64,
}

/// Counters describing store behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Chunks inserted.
    pub insertions: u64,
    /// Chunks evicted to make room.
    pub evictions: u64,
    /// High-water mark of stored bytes — how hard a shared cache was
    /// pressed by its clients' combined working set.
    pub peak_used_bytes: u64,
    /// Evicted-CID log entries dropped past [`EVICTED_LOG_CAP`] before the
    /// host could drain them (each drop is a `ChunkEvicted` trace record
    /// that never reached the flight recorder).
    pub evict_log_dropped: u64,
}

/// A bounded chunk store: the heart of XCache.
///
/// Content providers [`publish`](ChunkStore::publish) chunks (pinned);
/// routers and staging VNFs [`insert`](ChunkStore::insert) cached copies
/// that compete for capacity under the configured [`EvictionPolicy`].
///
/// # Examples
///
/// ```
/// use util::bytes::Bytes;
/// use xcache::store::{ChunkStore, EvictionPolicy};
/// use xia_addr::Xid;
///
/// let mut store = ChunkStore::new(1024, EvictionPolicy::Lru);
/// let data = Bytes::from_static(b"chunk body");
/// let cid = Xid::for_content(&data);
/// store.insert(cid, data.clone());
/// assert_eq!(store.get(&cid), Some(data));
/// ```
#[derive(Debug)]
pub struct ChunkStore {
    capacity_bytes: usize,
    policy: EvictionPolicy,
    entries: BTreeMap<Xid, Entry>,
    used_bytes: usize,
    clock: u64,
    stats: StoreStats,
    /// CIDs lost to eviction or wipe since the last [`ChunkStore::take_evicted`],
    /// bounded by [`EVICTED_LOG_CAP`] so an undrained store stays small.
    evicted_log: Vec<Xid>,
    /// Log entries dropped past the cap since the last
    /// [`ChunkStore::take_evicted_dropped`] — fleet-scale eviction churn
    /// between host flushes must surface in the trace, not vanish.
    evicted_dropped: u64,
}

/// Upper bound on the pending evicted-CID log (drained by the host's
/// flight-recorder flush; entries beyond the cap are counted and reported
/// as one aggregate overflow record instead of individual CIDs).
const EVICTED_LOG_CAP: usize = 4096;

impl ChunkStore {
    /// Creates a store holding at most `capacity_bytes` of chunk data.
    pub fn new(capacity_bytes: usize, policy: EvictionPolicy) -> Self {
        ChunkStore {
            capacity_bytes,
            policy,
            entries: BTreeMap::new(),
            used_bytes: 0,
            clock: 0,
            stats: StoreStats::default(),
            evicted_log: Vec::new(),
            evicted_dropped: 0,
        }
    }

    /// An effectively unbounded store (for origin servers).
    pub fn unbounded() -> Self {
        ChunkStore::new(usize::MAX, EvictionPolicy::Lru)
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of chunks stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Whether `cid` is present (does not count as an access).
    pub fn contains(&self, cid: &Xid) -> bool {
        self.entries.contains_key(cid)
    }

    /// Looks up a chunk, counting hit/miss and refreshing recency.
    pub fn get(&mut self, cid: &Xid) -> Option<Bytes> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(cid) {
            Some(e) => {
                e.last_access = clock;
                e.hits += 1;
                self.stats.hits += 1;
                Some(e.data.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Publishes a chunk: pinned, never evicted, not counted against the
    /// eviction budget (origin content must stay available).
    pub fn publish(&mut self, cid: Xid, data: Bytes) {
        self.insert_inner(cid, data, true);
    }

    /// Inserts a cached (evictable) copy. Returns `false` if the chunk is
    /// larger than the whole store and was not inserted.
    pub fn insert(&mut self, cid: Xid, data: Bytes) -> bool {
        if data.len() > self.capacity_bytes {
            return false;
        }
        self.insert_inner(cid, data, false);
        true
    }

    fn insert_inner(&mut self, cid: Xid, data: Bytes, pinned: bool) {
        self.clock += 1;
        if let Some(old) = self.entries.remove(&cid) {
            self.used_bytes -= old.data.len();
        }
        let need = data.len();
        if !pinned {
            while self.used_bytes + need > self.capacity_bytes {
                if !self.evict_one() {
                    break;
                }
            }
        }
        self.used_bytes += need;
        self.stats.peak_used_bytes = self.stats.peak_used_bytes.max(self.used_bytes as u64);
        self.stats.insertions += 1;
        self.entries.insert(
            cid,
            Entry {
                data,
                pinned,
                inserted: self.clock,
                last_access: self.clock,
                hits: 0,
            },
        );
    }

    /// Drops every cached (unpinned) chunk — the fault-injection "cache
    /// wipe". Published (pinned) content survives: it models durable origin
    /// storage, while cached copies are volatile. Returns how many chunks
    /// were lost.
    pub fn wipe(&mut self) -> usize {
        // BTreeMap iterates in ascending CID order, so the evicted log
        // (and hence a recorded trace) is identical across runs.
        let victims: Vec<Xid> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.pinned)
            .map(|(cid, _)| *cid)
            .collect();
        for cid in &victims {
            if let Some(e) = self.entries.remove(cid) {
                self.used_bytes -= e.data.len();
                self.log_evicted(*cid);
            }
        }
        victims.len()
    }

    /// Resizes the store in place — the fault-injection "cache squeeze".
    ///
    /// Shrinking evicts unpinned chunks per the policy (logged like any
    /// other eviction) until the cached data fits; pinned content never
    /// goes, so a store holding more pinned bytes than `capacity_bytes`
    /// simply stops caching. Growing takes effect immediately. Returns
    /// how many chunks were evicted.
    pub fn resize(&mut self, capacity_bytes: usize) -> usize {
        self.capacity_bytes = capacity_bytes;
        let mut evicted = 0;
        while self.used_bytes > self.capacity_bytes {
            if !self.evict_one() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    /// The store's current capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Removes a chunk outright (e.g. invalidation).
    pub fn remove(&mut self, cid: &Xid) -> Option<Bytes> {
        let e = self.entries.remove(cid)?;
        self.used_bytes -= e.data.len();
        Some(e.data)
    }

    /// Evicts one unpinned chunk per the policy. Returns false if nothing
    /// is evictable.
    fn evict_one(&mut self) -> bool {
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| !e.pinned)
            .min_by_key(|(_, e)| match self.policy {
                EvictionPolicy::Lru => (e.last_access, e.inserted),
                EvictionPolicy::Fifo => (e.inserted, e.inserted),
                EvictionPolicy::Lfu => (e.hits, e.last_access),
            })
            .map(|(cid, _)| *cid);
        match victim.and_then(|cid| self.entries.remove(&cid).map(|e| (cid, e))) {
            Some((cid, e)) => {
                self.used_bytes -= e.data.len();
                self.stats.evictions += 1;
                self.log_evicted(cid);
                true
            }
            None => false,
        }
    }

    fn log_evicted(&mut self, cid: Xid) {
        if self.evicted_log.len() < EVICTED_LOG_CAP {
            self.evicted_log.push(cid);
        } else {
            self.evicted_dropped += 1;
            self.stats.evict_log_dropped += 1;
        }
    }

    /// Drains the CIDs lost to eviction or wipe since the last call, in
    /// loss order. Costs nothing when no chunk was lost. The host flushes
    /// this into the flight recorder after each dispatch.
    pub fn take_evicted(&mut self) -> Vec<Xid> {
        std::mem::take(&mut self.evicted_log)
    }

    /// Drains the count of evicted CIDs the bounded log had to drop since
    /// the last call. The host turns a non-zero count into one aggregate
    /// `EvictOverflow` trace record, so overflow never silently desyncs
    /// the trace's eviction accounting.
    pub fn take_evicted_dropped(&mut self) -> u64 {
        std::mem::take(&mut self.evicted_dropped)
    }

    /// CIDs currently stored, in ascending CID order.
    pub fn iter(&self) -> impl Iterator<Item = &Xid> {
        self.entries.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(tag: u8, len: usize) -> (Xid, Bytes) {
        let data = Bytes::from(vec![tag; len]);
        (Xid::for_content(&data), data)
    }

    #[test]
    fn insert_get_roundtrip_and_stats() {
        let mut s = ChunkStore::new(100, EvictionPolicy::Lru);
        let (cid, data) = chunk(1, 10);
        assert!(s.insert(cid, data.clone()));
        assert_eq!(s.get(&cid), Some(data));
        assert_eq!(s.get(&Xid::for_content(b"nope")), None);
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.used_bytes(), 10);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut s = ChunkStore::new(30, EvictionPolicy::Lru);
        let (c1, d1) = chunk(1, 10);
        let (c2, d2) = chunk(2, 10);
        let (c3, d3) = chunk(3, 10);
        s.insert(c1, d1);
        s.insert(c2, d2);
        s.insert(c3, d3);
        // Touch c1 so c2 is the LRU victim.
        let _ = s.get(&c1);
        let (c4, d4) = chunk(4, 10);
        s.insert(c4, d4);
        assert!(s.contains(&c1));
        assert!(!s.contains(&c2), "LRU victim evicted");
        assert!(s.contains(&c3) && s.contains(&c4));
        assert_eq!(s.stats().evictions, 1);
    }

    #[test]
    fn resize_shrink_evicts_to_fit_and_spares_pinned() {
        let mut s = ChunkStore::new(100, EvictionPolicy::Lru);
        let (pinned, pd) = chunk(0, 20);
        s.publish(pinned, pd);
        let (c1, d1) = chunk(1, 10);
        let (c2, d2) = chunk(2, 10);
        let (c3, d3) = chunk(3, 10);
        s.insert(c1, d1);
        s.insert(c2, d2);
        s.insert(c3, d3);
        let _ = s.get(&c1); // c2 becomes the LRU victim, then c3.
        assert_eq!(s.resize(35), 2);
        assert_eq!(s.capacity_bytes(), 35);
        assert!(s.contains(&pinned) && s.contains(&c1));
        assert!(!s.contains(&c2) && !s.contains(&c3));
        assert_eq!(s.used_bytes(), 30);
        assert_eq!(s.stats().evictions, 2);
        assert_eq!(s.take_evicted().len(), 2, "squeeze evictions are logged");
        // Squeezing below the pinned footprint stops at the pinned floor.
        assert_eq!(s.resize(5), 1);
        assert!(s.contains(&pinned) && !s.contains(&c1));
        assert_eq!(s.used_bytes(), 20);
        // Growing back is immediate and evicts nothing.
        assert_eq!(s.resize(100), 0);
        let (c4, d4) = chunk(4, 50);
        assert!(s.insert(c4, d4));
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut s = ChunkStore::new(30, EvictionPolicy::Fifo);
        let (c1, d1) = chunk(1, 10);
        let (c2, d2) = chunk(2, 10);
        let (c3, d3) = chunk(3, 10);
        s.insert(c1, d1);
        s.insert(c2, d2);
        s.insert(c3, d3);
        let _ = s.get(&c1); // FIFO ignores recency.
        let (c4, d4) = chunk(4, 10);
        s.insert(c4, d4);
        assert!(!s.contains(&c1), "oldest insertion evicted");
        assert!(s.contains(&c2));
    }

    #[test]
    fn lfu_evicts_least_hit() {
        let mut s = ChunkStore::new(30, EvictionPolicy::Lfu);
        let (c1, d1) = chunk(1, 10);
        let (c2, d2) = chunk(2, 10);
        let (c3, d3) = chunk(3, 10);
        s.insert(c1, d1);
        s.insert(c2, d2);
        s.insert(c3, d3);
        let _ = s.get(&c1);
        let _ = s.get(&c1);
        let _ = s.get(&c3);
        let (c4, d4) = chunk(4, 10);
        s.insert(c4, d4);
        assert!(!s.contains(&c2), "least-hit chunk evicted");
    }

    #[test]
    fn pinned_content_survives_pressure() {
        let mut s = ChunkStore::new(20, EvictionPolicy::Lru);
        let (pc, pd) = chunk(9, 15);
        s.publish(pc, pd);
        let (c1, d1) = chunk(1, 10);
        let (c2, d2) = chunk(2, 10);
        assert!(s.insert(c1, d1));
        assert!(s.insert(c2, d2));
        assert!(s.contains(&pc), "published chunk never evicted");
        // Only one unpinned chunk can coexist with the pinned one.
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn oversized_insert_rejected() {
        let mut s = ChunkStore::new(10, EvictionPolicy::Lru);
        let (c, d) = chunk(1, 11);
        assert!(!s.insert(c, d));
        assert!(s.is_empty());
    }

    #[test]
    fn reinsert_same_cid_replaces() {
        let mut s = ChunkStore::new(100, EvictionPolicy::Lru);
        let (c, d) = chunk(1, 10);
        s.insert(c, d.clone());
        s.insert(c, d);
        assert_eq!(s.len(), 1);
        assert_eq!(s.used_bytes(), 10);
    }

    #[test]
    fn remove_returns_data() {
        let mut s = ChunkStore::new(100, EvictionPolicy::Lru);
        let (c, d) = chunk(1, 10);
        s.insert(c, d.clone());
        assert_eq!(s.remove(&c), Some(d));
        assert_eq!(s.remove(&c), None);
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn unbounded_store_takes_everything() {
        let mut s = ChunkStore::unbounded();
        for i in 0..100u8 {
            let (c, d) = chunk(i, 1000);
            assert!(s.insert(c, d));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.stats().evictions, 0);
    }

    #[test]
    fn peak_used_bytes_is_a_high_water_mark() {
        let mut s = ChunkStore::new(100, EvictionPolicy::Lru);
        let (c1, d1) = chunk(1, 60);
        let (c2, d2) = chunk(2, 30);
        s.insert(c1, d1);
        s.insert(c2, d2);
        assert_eq!(s.stats().peak_used_bytes, 90);
        s.remove(&c1);
        assert_eq!(s.used_bytes(), 30);
        assert_eq!(s.stats().peak_used_bytes, 90, "peak survives removals");
    }

    #[test]
    fn evicted_log_overflow_is_counted_not_silent() {
        // A 1-chunk store churned past the log cap: every eviction beyond
        // EVICTED_LOG_CAP must be accounted for, not dropped on the floor.
        let mut s = ChunkStore::new(8, EvictionPolicy::Lru);
        let total = EVICTED_LOG_CAP + 100;
        for i in 0..=total {
            let data = Bytes::from(vec![(i % 251) as u8, (i / 251) as u8, 7, 7, 0, 0, 0, 1]);
            assert!(s.insert(Xid::for_content(&data), data));
        }
        // `total` evictions happened; the log holds the cap, the rest are
        // counted as drops.
        assert_eq!(s.stats().evictions, total as u64);
        assert_eq!(s.stats().evict_log_dropped, 100);
        assert_eq!(s.take_evicted().len(), EVICTED_LOG_CAP);
        assert_eq!(s.take_evicted_dropped(), 100);
        // Draining resets both; eviction accounting adds up exactly.
        assert!(s.take_evicted().is_empty());
        assert_eq!(s.take_evicted_dropped(), 0);
    }
}
