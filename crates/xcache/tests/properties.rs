//! Property-based tests: chunking round-trips and store invariants.

use util::bytes::Bytes;
use util::check::check;
use util::json::{FromJson, Json, ToJson};
use xcache::{chunk_content, chunker::reassemble, ChunkStore, EvictionPolicy, Manifest};
use xia_addr::Xid;

/// Chunk + reassemble is the identity for any content and chunk size, and
/// the manifest survives a JSON round-trip.
#[test]
fn chunk_reassemble_roundtrip() {
    check("chunk_reassemble_roundtrip", 64, |g| {
        let len = g.usize_in(0, 8191);
        let content = Bytes::from(g.bytes(len));
        let chunk_size = g.usize_in(1, 2999);
        let (manifest, chunks) = chunk_content(&content, chunk_size);
        assert_eq!(manifest.total_len, content.len() as u64);
        assert_eq!(manifest.len(), content.len().div_ceil(chunk_size));
        let text = manifest.to_json().to_string_compact();
        let back = Manifest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, manifest);
        let map: std::collections::HashMap<Xid, Bytes> = chunks.into_iter().collect();
        let back = reassemble(&manifest, |cid| map.get(cid).cloned()).unwrap();
        assert_eq!(back, content);
    });
}

/// Every chunk except possibly the last has exactly `chunk_size`
/// bytes; the last has the remainder.
#[test]
fn chunk_sizes_exact() {
    check("chunk_sizes_exact", 64, |g| {
        let len = g.usize_in(0, 8191);
        let chunk_size = g.usize_in(1, 2999);
        let content = Bytes::from((0..len).map(|i| (i % 255) as u8).collect::<Vec<u8>>());
        let (_, chunks) = chunk_content(&content, chunk_size);
        for (i, (_, data)) in chunks.iter().enumerate() {
            if i + 1 < chunks.len() {
                assert_eq!(data.len(), chunk_size);
            } else {
                assert!(data.len() <= chunk_size && !data.is_empty());
            }
        }
    });
}

/// The store never exceeds its capacity with unpinned content, and its
/// byte accounting always matches the sum of stored chunks.
#[test]
fn store_capacity_and_accounting() {
    check("store_capacity_and_accounting", 128, |g| {
        let capacity = g.usize_in(200, 1999);
        let policy = *g.choose(&[
            EvictionPolicy::Lru,
            EvictionPolicy::Fifo,
            EvictionPolicy::Lfu,
        ]);
        let ops = g.vec_of(1, 59, |g| (g.u64() as u8, g.usize_in(1, 199), g.bool()));
        let mut store = ChunkStore::new(capacity, policy);
        let mut pinned_bytes = 0usize;
        for (tag, len, publish) in ops {
            let data = Bytes::from(vec![tag; len]);
            let cid = Xid::for_content(&data);
            if publish {
                if !store.contains(&cid) {
                    pinned_bytes += len;
                }
                store.publish(cid, data);
            } else {
                store.insert(cid, data);
            }
            // Accounting invariant: used bytes equals what a lookup of all
            // stored chunks sums to. (Pinned content may exceed capacity,
            // cached content may not push usage above capacity + pinned.)
            assert!(
                store.used_bytes() <= capacity + pinned_bytes,
                "used {} > capacity {} + pinned {}",
                store.used_bytes(),
                capacity,
                pinned_bytes
            );
        }
    });
}

/// Whatever was inserted and not evicted reads back identical.
#[test]
fn store_reads_back_what_it_holds() {
    check("store_reads_back_what_it_holds", 128, |g| {
        let tags = g.vec_of(1, 29, |g| g.u64() as u8);
        let mut store = ChunkStore::unbounded();
        let mut expect = Vec::new();
        for tag in tags {
            let data = Bytes::from(vec![tag; 64]);
            let cid = Xid::for_content(&data);
            store.insert(cid, data.clone());
            expect.push((cid, data));
        }
        for (cid, data) in expect {
            assert_eq!(store.get(&cid), Some(data));
        }
    });
}
