//! Property-based tests: chunking round-trips and store invariants.

use bytes::Bytes;
use proptest::prelude::*;
use xcache::{chunk_content, chunker::reassemble, ChunkStore, EvictionPolicy};
use xia_addr::Xid;

proptest! {
    /// Chunk + reassemble is the identity for any content and chunk size.
    #[test]
    fn chunk_reassemble_roundtrip(
        content in proptest::collection::vec(any::<u8>(), 0..8192),
        chunk_size in 1usize..3000,
    ) {
        let content = Bytes::from(content);
        let (manifest, chunks) = chunk_content(&content, chunk_size);
        prop_assert_eq!(manifest.total_len, content.len() as u64);
        prop_assert_eq!(manifest.len(), content.len().div_ceil(chunk_size));
        let map: std::collections::HashMap<Xid, Bytes> = chunks.into_iter().collect();
        let back = reassemble(&manifest, |cid| map.get(cid).cloned()).unwrap();
        prop_assert_eq!(back, content);
    }

    /// Every chunk except possibly the last has exactly `chunk_size`
    /// bytes; the last has the remainder.
    #[test]
    fn chunk_sizes_exact(
        len in 0usize..8192,
        chunk_size in 1usize..3000,
    ) {
        let content = Bytes::from((0..len).map(|i| (i % 255) as u8).collect::<Vec<u8>>());
        let (_, chunks) = chunk_content(&content, chunk_size);
        for (i, (_, data)) in chunks.iter().enumerate() {
            if i + 1 < chunks.len() {
                prop_assert_eq!(data.len(), chunk_size);
            } else {
                prop_assert!(data.len() <= chunk_size && !data.is_empty());
            }
        }
    }

    /// The store never exceeds its capacity with unpinned content, and its
    /// byte accounting always matches the sum of stored chunks.
    #[test]
    fn store_capacity_and_accounting(
        ops in proptest::collection::vec((any::<u8>(), 1usize..200, any::<bool>()), 1..60),
        capacity in 200usize..2000,
        policy_idx in 0usize..3,
    ) {
        let policy = [EvictionPolicy::Lru, EvictionPolicy::Fifo, EvictionPolicy::Lfu][policy_idx];
        let mut store = ChunkStore::new(capacity, policy);
        let mut pinned_bytes = 0usize;
        for (tag, len, publish) in ops {
            let data = Bytes::from(vec![tag; len]);
            let cid = Xid::for_content(&data);
            if publish {
                if !store.contains(&cid) {
                    pinned_bytes += len;
                }
                store.publish(cid, data);
            } else {
                store.insert(cid, data);
            }
            // Accounting invariant: used bytes equals what a lookup of all
            // stored chunks sums to. (Pinned content may exceed capacity,
            // cached content may not push usage above capacity + pinned.)
            prop_assert!(
                store.used_bytes() <= capacity + pinned_bytes,
                "used {} > capacity {} + pinned {}",
                store.used_bytes(), capacity, pinned_bytes
            );
        }
    }

    /// Whatever was inserted and not evicted reads back identical.
    #[test]
    fn store_reads_back_what_it_holds(
        tags in proptest::collection::vec(any::<u8>(), 1..30),
    ) {
        let mut store = ChunkStore::unbounded();
        let mut expect = Vec::new();
        for tag in tags {
            let data = Bytes::from(vec![tag; 64]);
            let cid = Xid::for_content(&data);
            store.insert(cid, data.clone());
            expect.push((cid, data));
        }
        for (cid, data) in expect {
            prop_assert_eq!(store.get(&cid), Some(data));
        }
    }
}
