//! Zero-dependency building blocks shared by the whole workspace.
//!
//! The reproduction must build and test with **no network and no external
//! crates** — a registry outage or an air-gapped machine must never stop
//! `cargo build --release && cargo test -q`. This crate provides the small
//! slices of third-party functionality the workspace actually uses:
//!
//! - [`bytes`]: a cheap-clone, reference-counted byte buffer
//!   ([`bytes::Bytes`]) and a growable builder ([`bytes::BytesMut`]),
//!   replacing the `bytes` crate,
//! - [`json`]: a minimal JSON value model, writer and parser, replacing
//!   `serde`/`serde_json` for trace files, staging messages and experiment
//!   reports,
//! - [`check`]: a seeded property-test harness with shrink-on-fail,
//!   replacing `proptest` in the workspace's property tests,
//! - [`bench`]: a wall-clock micro-benchmark harness, replacing
//!   `criterion` for the reproduction's figure benches.
//!
//! Everything here is deterministic where it matters: the property harness
//! derives its cases from a fixed per-property seed, so CI failures
//! reproduce locally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod bytes;
pub mod check;
pub mod json;
