//! Zero-dependency building blocks shared by the whole workspace.
//!
//! The reproduction must build and test with **no network and no external
//! crates** — a registry outage or an air-gapped machine must never stop
//! `cargo build --release && cargo test -q`. This crate provides the small
//! slices of third-party functionality the workspace actually uses:
//!
//! - [`bytes`]: a cheap-clone, reference-counted byte buffer
//!   ([`bytes::Bytes`]) and a growable builder ([`bytes::BytesMut`]),
//!   replacing the `bytes` crate,
//! - [`json`]: a minimal JSON value model, writer and parser, replacing
//!   `serde`/`serde_json` for trace files, staging messages and experiment
//!   reports,
//! - [`check`]: a seeded property-test harness with shrink-on-fail,
//!   replacing `proptest` in the workspace's property tests,
//! - [`bench`]: a wall-clock micro-benchmark harness, replacing
//!   `criterion` for the reproduction's figure benches,
//! - [`seed`]: splitmix64-based seed derivation for replicated
//!   experiment grids (one base seed, per-cell/per-replicate streams),
//! - [`sync`]: the workspace's doorway to `std::sync`/`std::thread` —
//!   zero-cost re-exports in normal builds that swap to the `ssmc`
//!   model checker's instrumented twins under `--cfg model`, plus the
//!   shared [`sync::parallel_map`] pool and [`sync::MemoMap`] memo.
//!
//! Everything here is deterministic where it matters: the property harness
//! derives its cases from a fixed per-property seed, so CI failures
//! reproduce locally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod bytes;
pub mod check;
pub mod json;
pub mod seed;
pub mod sync;

/// Whether trace emitters are compiled into this build.
///
/// Evaluated against **this crate's** `trace` feature (on by default), not
/// the caller's, so [`trace_event!`] behaves identically from every crate
/// in the workspace. When the feature is off the macro body becomes
/// `if false { ... }` and the optimizer removes both the branch and the
/// event construction.
pub const fn trace_compiled() -> bool {
    cfg!(feature = "trace")
}

/// Emits a trace event through a context, paying nothing when tracing is
/// unavailable.
///
/// `$ctx` is any value with `tracing(&self) -> bool` and
/// `trace(&mut self, event)` methods (simnet's `Context`, xia-host's
/// `HostCtx`). The event expression is only evaluated when a sink is
/// actually attached, so hot paths never allocate or format for a
/// disabled recorder.
#[macro_export]
macro_rules! trace_event {
    ($ctx:expr, $ev:expr) => {
        if $crate::trace_compiled() && $ctx.tracing() {
            $ctx.trace($ev);
        }
    };
}
