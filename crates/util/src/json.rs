//! A minimal JSON value model, writer and parser.
//!
//! Replaces `serde`/`serde_json` for the workspace's needs: connectivity
//! trace files, staging control messages and experiment reports. Object
//! key order is preserved (insertion order), integers and floats are kept
//! distinct so `u64` microsecond timestamps survive a round trip exactly,
//! and floats print with a decimal point (`2.0`, not `2`) so readers can
//! tell them apart from integers.
//!
//! Types opt in by implementing [`ToJson`] / [`FromJson`] by hand — there
//! is no derive machinery, which keeps this dependency-free.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer written without decimal point or exponent.
    Int(i64),
    /// A non-integer number (or any number with `.`/`e` in the source).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Builds an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Serialize a value into a [`Json`] tree.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Deserialize a value from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, or explains what was malformed.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`] but an error naming the key, for required fields.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64` (integers only).
    pub(crate) fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64`; integers widen losslessly where possible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Human-readable rendering with 2-space indentation and a trailing
    /// newline, suitable for files kept under version control.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, level: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Float(x) => write_float(out, *x),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => write_seq(out, items.len(), indent, level, '[', ']', |out, i, lvl| {
            write_value(out, &items[i], indent, lvl)
        }),
        Json::Obj(pairs) => write_seq(out, pairs.len(), indent, level, '{', '}', |out, i, lvl| {
            let (k, val) = &pairs[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, val, indent, lvl);
        }),
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(level + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is the shortest representation that round-trips and always
        // carries a `.0`/exponent, so floats stay visually distinct.
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no NaN/Infinity.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("malformed number"))
        } else {
            // Integers that overflow i64 fall back to f64, as serde_json
            // does for arbitrary precision disabled.
            match text.parse::<i64>() {
                Ok(n) => Ok(Json::Int(n)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("malformed number")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blanket conversions for common primitives
// ---------------------------------------------------------------------------

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
int_to_json!(i8, i16, i32, i64, u8, u16, u32, usize, isize);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        if *self <= i64::MAX as u64 {
            Json::Int(*self as i64)
        } else {
            Json::Float(*self as f64)
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64()
            .ok_or_else(|| JsonError::new("expected non-negative integer"))
    }
}

impl FromJson for i64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_i64().ok_or_else(|| JsonError::new("expected integer"))
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        u64::from_json(v).map(|n| n as usize)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::new("expected number"))
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::new("expected boolean"))
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_key_order() {
        let v = Json::Obj(vec![
            ("zebra".into(), Json::Int(1)),
            (
                "alpha".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true)]),
            ),
            ("pi".into(), Json::Float(3.25)),
            ("name".into(), Json::Str("a \"quoted\"\nline".into())),
        ]);
        let text = v.to_string_compact();
        assert!(text.starts_with("{\"zebra\""), "key order lost: {text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn floats_keep_their_decimal_point() {
        assert_eq!(Json::Float(2.0).to_string_compact(), "2.0");
        assert_eq!(Json::Float(0.1).to_string_compact(), "0.1");
        assert_eq!(Json::Int(2).to_string_compact(), "2");
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn large_u64_survives_via_int() {
        let n = (i64::MAX as u64) - 7;
        let j = n.to_json();
        assert_eq!(
            u64::from_json(&Json::parse(&j.to_string_compact()).unwrap()).unwrap(),
            n
        );
    }

    #[test]
    fn parses_handwritten_json_with_whitespace_and_escapes() {
        let text = r#"
          { "name" : "trace-é\t1",
            "periods" : [ {"up": true, "secs": 12}, {"up": false, "secs": 8} ],
            "coverage" : 0.6 }
        "#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "trace-é\t1");
        assert_eq!(v.get("periods").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("coverage").unwrap().as_f64().unwrap(), 0.6);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "1.2.3",
            "{\"a\":1} trailing",
            "[1 2]",
            "\"bad \\q escape\"",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        // Escaped surrogate pair decodes to one astral-plane char...
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        // ...and raw (non-escaped) UTF-8 passes straight through.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str().unwrap(), "😀");
    }

    #[test]
    fn option_and_vec_conversions() {
        let v: Option<u64> = None;
        assert_eq!(v.to_json(), Json::Null);
        assert_eq!(Option::<u64>::from_json(&Json::Int(3)).unwrap(), Some(3));
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&xs.to_json()).unwrap(), xs);
    }
}
