//! A wall-clock micro-benchmark harness, replacing `criterion`.
//!
//! Bench binaries (`harness = false`) build a [`Runner`], register
//! closures, and get a per-iteration timing table on stdout:
//!
//! ```no_run
//! let mut r = util::bench::Runner::new("codec");
//! r.bench("encode_segment", || {
//!     // work under test
//! });
//! ```
//!
//! Each bench auto-calibrates: the closure is warmed up, then batched so
//! one timed sample lasts long enough for the clock to resolve, and the
//! median of several samples is reported (robust to scheduler noise).

use std::time::Instant;

/// Re-export of the optimizer barrier for bench bodies.
pub use std::hint::black_box;

/// Target wall-clock time for one timed sample.
const SAMPLE_TARGET_NS: u128 = 20_000_000; // 20 ms
/// Number of timed samples per bench; the median is reported.
const SAMPLES: usize = 9;

/// Timing summary for one registered bench.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Bench name as registered.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per timed sample after calibration.
    pub iters_per_sample: u64,
}

impl Timing {
    fn throughput(&self) -> String {
        if self.ns_per_iter <= 0.0 {
            return "-".to_string();
        }
        let per_sec = 1e9 / self.ns_per_iter;
        if per_sec >= 1e6 {
            format!("{:.2} M/s", per_sec / 1e6)
        } else if per_sec >= 1e3 {
            format!("{:.2} K/s", per_sec / 1e3)
        } else {
            format!("{per_sec:.2} /s")
        }
    }
}

/// Collects and prints benches for one suite (one bench binary).
pub struct Runner {
    results: Vec<Timing>,
}

impl Runner {
    /// Starts a suite; prints a header immediately.
    pub fn new(suite: &str) -> Self {
        println!("suite {suite}");
        println!(
            "{:<40} {:>14} {:>14} {:>12}",
            "bench", "ns/iter", "throughput", "iters"
        );
        Runner {
            results: Vec::new(),
        }
    }

    /// Calibrates, times and reports one bench.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        // Warm-up and calibration: grow the batch size until one batch
        // takes at least the sample target.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t.elapsed().as_nanos();
            if elapsed >= SAMPLE_TARGET_NS || iters >= 1 << 30 {
                break;
            }
            // Aim straight for the target, with headroom for jitter.
            let scale = if elapsed == 0 {
                16
            } else {
                ((SAMPLE_TARGET_NS as f64 / elapsed as f64) * 1.2).ceil() as u64
            };
            iters = (iters.saturating_mul(scale.max(2))).min(1 << 30);
        }

        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or_default();

        let timing = Timing {
            name: name.to_string(),
            ns_per_iter: median,
            iters_per_sample: iters,
        };
        println!(
            "{:<40} {:>14.1} {:>14} {:>12}",
            timing.name,
            timing.ns_per_iter,
            timing.throughput(),
            timing.iters_per_sample
        );
        self.results.push(timing);
    }

    /// The timings collected so far, in registration order.
    pub fn results(&self) -> &[Timing] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_and_reports_a_cheap_bench() {
        let mut r = Runner::new("selftest");
        let mut acc = 0u64;
        r.bench("wrapping_add", || {
            acc = black_box(acc.wrapping_add(3));
        });
        let t = &r.results()[0];
        assert_eq!(t.name, "wrapping_add");
        assert!(t.ns_per_iter >= 0.0);
        assert!(t.iters_per_sample >= 1);
    }
}
