//! A small seeded property-test harness with shrink-on-fail.
//!
//! Replaces `proptest` for the workspace's property tests. Properties draw
//! their inputs from a [`Gen`], which records every raw `u64` choice on a
//! tape. When a case fails (panics), the harness replays the property on
//! systematically simplified tapes — truncations, zeroing, halving and
//! decrementing individual choices — and reports the smallest tape that
//! still fails, together with the deterministic seed so the failure
//! reproduces exactly on any machine.
//!
//! ```
//! util::check::check("addition_commutes", 64, |g| {
//!     let a = g.u64_in(0, 1_000_000);
//!     let b = g.u64_in(0, 1_000_000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::sync::Mutex;

/// Number of shrink candidates tried after a failure before giving up.
const SHRINK_BUDGET: usize = 2000;

// The panic hook is process-global; serialize hooked sections so parallel
// test threads don't clobber each other's hooks.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// A deterministic source of choices for one property case.
///
/// In generation mode it draws fresh values from a seeded SplitMix64
/// stream and records them; in replay mode it reads back a (possibly
/// shrunk) tape, yielding `0` once the tape is exhausted — which biases
/// shrunk cases toward the simplest inputs.
pub struct Gen {
    state: u64,
    tape: Vec<u64>,
    replay: Option<usize>,
}

impl Gen {
    fn fresh(seed: u64) -> Self {
        Gen {
            state: seed,
            tape: Vec::new(),
            replay: None,
        }
    }

    fn replaying(tape: Vec<u64>) -> Self {
        Gen {
            state: 0,
            tape,
            replay: Some(0),
        }
    }

    /// The next raw 64-bit choice.
    pub fn u64(&mut self) -> u64 {
        match self.replay {
            Some(pos) => {
                let v = self.tape.get(pos).copied().unwrap_or(0);
                self.replay = Some(pos + 1);
                v
            }
            None => {
                let v = splitmix64(&mut self.state);
                self.tape.push(v);
                v
            }
        }
    }

    /// A uniform integer in `lo..=hi`. Shrinks toward `lo`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.u64();
        }
        lo + self.u64() % (span + 1)
    }

    /// A uniform `usize` in `lo..=hi`. Shrinks toward `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform signed integer in `lo..=hi`. Shrinks toward `lo`.
    #[cfg(test)]
    pub(crate) fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in: empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(self.u64_in(0, span) as i64)
    }

    /// A uniform float in `[0, 1)`. Shrinks toward `0.0`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[lo, hi)`. Shrinks toward `lo`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    /// A fair coin flip. Shrinks toward `false`.
    pub fn bool(&mut self) -> bool {
        self.u64() % 2 == 1
    }

    /// `len` arbitrary bytes. Shrinks toward zeros.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let v = self.u64();
            for b in v.to_le_bytes() {
                if out.len() == len {
                    break;
                }
                out.push(b);
            }
        }
        out
    }

    /// A vector with `lo..=hi` elements drawn from `item`. Shrinks toward
    /// fewer, simpler elements.
    pub fn vec_of<T>(
        &mut self,
        lo: usize,
        hi: usize,
        mut item: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(lo, hi);
        (0..n).map(|_| item(self)).collect()
    }

    /// Picks one element of a non-empty slice. Shrinks toward the first.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose: empty slice");
        &items[self.usize_in(0, items.len() - 1)]
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `prop` on `cases` generated inputs; on failure, shrinks and panics
/// with a reproduction report.
///
/// The case stream is a pure function of `name`, so a failure seen in CI
/// reproduces locally with no extra state. Set `UTIL_CHECK_SEED` to probe
/// a property with a different stream.
pub fn check(name: &str, cases: usize, prop: impl Fn(&mut Gen)) {
    let base = match std::env::var("UTIL_CHECK_SEED") {
        Ok(s) => fnv1a(name) ^ fnv1a(&s),
        Err(_) => fnv1a(name),
    };

    let _serial = HOOK_LOCK.lock();
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // quiet during search + shrink
    let outcome = run_all(base, cases, &prop).map(|(case, tape, msg)| {
        let (tape, msg) = shrink(&prop, tape, msg);
        (case, tape, msg)
    });
    std::panic::set_hook(saved_hook);

    if let Some((case, tape, msg)) = outcome {
        panic!(
            "property `{name}` failed (case {case}/{cases}, seed {base:#x})\n\
             minimal tape ({} choices): {:?}\n\
             failure: {msg}",
            tape.len(),
            tape,
        );
    }
}

/// Replays a property on an explicit tape — paste the "minimal tape" from
/// a failure report to debug it under a debugger or with printouts.
pub fn replay(tape: &[u64], prop: impl Fn(&mut Gen)) {
    let mut g = Gen::replaying(tape.to_vec());
    prop(&mut g);
}

fn run_all(base: u64, cases: usize, prop: &impl Fn(&mut Gen)) -> Option<(usize, Vec<u64>, String)> {
    for case in 0..cases {
        let mut seed_state = base.wrapping_add(case as u64);
        let seed = splitmix64(&mut seed_state);
        let mut g = Gen::fresh(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| prop(&mut g))) {
            return Some((case, g.tape, panic_message(payload)));
        }
    }
    None
}

fn fails(prop: &impl Fn(&mut Gen), tape: &[u64]) -> Option<String> {
    let mut g = Gen::replaying(tape.to_vec());
    catch_unwind(AssertUnwindSafe(|| prop(&mut g)))
        .err()
        .map(panic_message)
}

fn shrink(prop: &impl Fn(&mut Gen), mut tape: Vec<u64>, mut msg: String) -> (Vec<u64>, String) {
    let mut budget = SHRINK_BUDGET;
    let mut improved = true;
    while improved && budget > 0 {
        improved = false;

        // Pass 1: drop suffixes (halving first, then single steps).
        let mut cut = tape.len() / 2;
        while cut > 0 && budget > 0 {
            if cut > tape.len() {
                cut = tape.len();
                continue;
            }
            let candidate = tape[..tape.len() - cut].to_vec();
            budget -= 1;
            if let Some(m) = fails(prop, &candidate) {
                tape = candidate;
                msg = m;
                improved = true;
            } else {
                cut /= 2;
            }
        }

        // Pass 2: simplify individual choices toward zero.
        for i in 0..tape.len() {
            if budget == 0 {
                break;
            }
            let original = tape[i];
            for candidate_value in [0, original / 2, original.saturating_sub(1)] {
                if candidate_value >= tape[i] {
                    continue;
                }
                let mut candidate = tape.clone();
                candidate[i] = candidate_value;
                budget -= 1;
                if let Some(m) = fails(prop, &candidate) {
                    tape = candidate;
                    msg = m;
                    improved = true;
                    break;
                }
                if budget == 0 {
                    break;
                }
            }
        }
    }
    (tape, msg)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let seen = std::cell::Cell::new(0usize);
        check("always_true", 50, |g| {
            let _ = g.u64();
            seen.set(seen.get() + 1);
        });
        assert_eq!(seen.get(), 50);
    }

    #[test]
    fn ranges_are_respected() {
        check("ranges", 200, |g| {
            let x = g.u64_in(10, 20);
            assert!((10..=20).contains(&x));
            let y = g.i64_in(-5, 5);
            assert!((-5..=5).contains(&y));
            let f = g.f64_in(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
            let v = g.vec_of(0, 8, |g| g.bool());
            assert!(v.len() <= 8);
            let b = g.bytes(13);
            assert_eq!(b.len(), 13);
        });
    }

    #[test]
    fn failing_property_is_reported_with_a_minimal_tape() {
        let result = catch_unwind(|| {
            check("must_fail", 100, |g| {
                let x = g.u64_in(0, 1000);
                assert!(x < 50, "x too big: {x}");
            });
        });
        let msg = panic_message(result.unwrap_err());
        assert!(msg.contains("property `must_fail` failed"), "got: {msg}");
        assert!(msg.contains("minimal tape"), "got: {msg}");
        // The minimal counterexample for x<50 is x=50; shrinking minimizes
        // the mapped value (the raw tape entry is whatever ≡50 mod 1001).
        assert!(
            msg.contains("x too big: 50"),
            "shrink did not minimize: {msg}"
        );
        assert!(msg.contains("(1 choices)"), "tape not truncated: {msg}");
    }

    #[test]
    fn same_name_same_stream() {
        let collect = |_run: usize| {
            let mut vals = Vec::new();
            // Reach into the generator directly — determinism is about
            // the seed derivation, not the harness loop.
            let mut seed_state = fnv1a("stable").wrapping_add(3);
            let seed = splitmix64(&mut seed_state);
            let mut g = Gen::fresh(seed);
            for _ in 0..8 {
                vals.push(g.u64());
            }
            vals
        };
        assert_eq!(collect(0), collect(1));
    }

    #[test]
    fn replay_reproduces_a_tape() {
        replay(&[7, 11], |g| {
            let a = g.u64();
            let b = g.u64();
            let c = g.u64(); // beyond the tape → 0
            assert_eq!((a, b, c), (7, 11, 0));
        });
    }
}
