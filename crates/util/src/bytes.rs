//! Cheap-clone byte buffers, replacing the `bytes` crate.
//!
//! [`Bytes`] is an immutable, reference-counted view into a shared
//! allocation: cloning or slicing never copies payload bytes, which keeps
//! multi-megabyte chunks cheap to pass between the cache, transport and
//! applications. [`BytesMut`] is a growable builder with big-endian
//! integer appends that freezes into a [`Bytes`].

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable slice view of shared bytes.
///
/// # Examples
///
/// ```
/// use util::bytes::Bytes;
/// let b = Bytes::from(vec![1u8, 2, 3, 4]);
/// let tail = b.slice(2..);
/// assert_eq!(&tail[..], &[3, 4]);
/// assert_eq!(b.len(), 4); // the original view is unchanged
/// ```
#[derive(Clone, Default)]
pub struct Bytes {
    // Arc<Vec<u8>> rather than Arc<[u8]> so `From<Vec<u8>>` is a move:
    // converting a Vec into Arc<[u8]> would re-copy the payload to place
    // it inline with the refcount header, and chunk construction on the
    // transmit path does this for every multi-kilobyte buffer.
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `slice` into a new shared buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes::from(slice.to_vec())
    }

    /// Wraps a static byte slice (copies once; the name mirrors the
    /// `bytes` crate's constructor for drop-in compatibility).
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range for length {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

/// A growable byte builder that freezes into a [`Bytes`].
///
/// Integer appends are big-endian, matching the workspace's wire formats.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    #[cfg(test)]
    pub(crate) fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a byte slice.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation_without_copying() {
        let b = Bytes::from((0u8..=99).collect::<Vec<_>>());
        let mid = b.slice(10..20);
        assert_eq!(&mid[..], &(10u8..20).collect::<Vec<_>>()[..]);
        let tail = mid.slice(5..);
        assert_eq!(tail.len(), 5);
        assert_eq!(tail[0], 15);
        // The clone is a pointer bump, not a copy.
        assert_eq!(Arc::strong_count(&b.data), 3);
    }

    #[test]
    fn slice_forms() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(&b.slice(..)[..], &[1, 2, 3, 4, 5]);
        assert_eq!(&b.slice(..2)[..], &[1, 2]);
        assert_eq!(&b.slice(3..)[..], &[4, 5]);
        assert_eq!(&b.slice(1..=2)[..], &[2, 3]);
        assert!(b.slice(5..).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let b = Bytes::from(vec![0u8; 3]);
        let _ = b.slice(2..5);
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from(vec![7u8, 8]);
        assert_eq!(b, Bytes::copy_from_slice(&[7, 8]));
        assert_eq!(b, [7u8, 8]);
        assert_eq!(b, vec![7u8, 8]);
        assert_eq!(b, &[7u8, 8][..]);
        assert_ne!(b, Bytes::new());
    }

    #[test]
    fn builder_big_endian_layout() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090A0B0C0D0E);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[0xAB, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, b'x', b'y']
        );
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi"), *b"hi");
    }
}
