//! Deterministic seed derivation for replicated experiments.
//!
//! An experiment grid wants one user-facing base seed, yet every
//! (cell, replicate) pair must get a stable stream of its own — results
//! may never depend on which worker thread picked a cell up, or on the
//! order cells were declared in. [`derive`] gives each pair a seed that
//! is a pure function of `(base, key, replicate)`:
//!
//! - **replicate 0 is the canonical run**: it returns `base` unchanged,
//!   so single-shot results stay comparable across cells and with
//!   previously published tables,
//! - **replicates ≥ 1** mix the base seed, an FNV-1a hash of the cell
//!   key and the replicate index through the splitmix64 finalizer.
//!
//! The exact values are pinned by golden tests below: changing this
//! function silently shifts every replicated experiment, so it must be
//! a deliberate, reviewed act.

/// The splitmix64 output mix (Steele, Lea & Flood; also xoshiro's
/// recommended seeder). Bijective over `u64`.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over `key`'s bytes — a stable, dependency-free string hash.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the seed for one `(cell key, replicate)` pair from `base`.
///
/// Replicate 0 returns `base` itself (the canonical run); replicate
/// `r ≥ 1` chains `base`, the hashed key and `r` through [`splitmix64`]
/// so distinct cells and distinct replicates land in uncorrelated
/// streams.
pub fn derive(base: u64, key: &str, replicate: u32) -> u64 {
    if replicate == 0 {
        return base;
    }
    let mixed = splitmix64(base ^ fnv1a(key));
    splitmix64(mixed ^ u64::from(replicate))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values: replication results silently shift if any of these
    /// change, so they are pinned exactly.
    #[test]
    fn derivation_is_pinned() {
        // Canonical replicate passes the base seed through untouched.
        assert_eq!(derive(42, "fig6a/chunk-0.25", 0), 42);
        assert_eq!(derive(7, "anything", 0), 7);
        // splitmix64 reference vector (seed 0 state advance).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        // Derived replicates, pinned.
        assert_eq!(derive(42, "fig6a/chunk-0.25", 1), 0xC93E_E361_504C_A9A2);
        assert_eq!(derive(42, "fig6a/chunk-0.25", 2), 0xBB17_0064_FD10_BB34);
        assert_eq!(derive(42, "fig6f/rtt-50", 1), 0x5B22_CEED_600A_D86D);
    }

    #[test]
    fn distinct_cells_and_replicates_decorrelate() {
        let a1 = derive(42, "cell-a", 1);
        let a2 = derive(42, "cell-a", 2);
        let b1 = derive(42, "cell-b", 1);
        assert_ne!(a1, a2);
        assert_ne!(a1, b1);
        // A different base seed moves every derived stream.
        assert_ne!(derive(43, "cell-a", 1), a1);
    }
}
