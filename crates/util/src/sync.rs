//! The workspace's only doorway to `std::sync` / `std::thread`.
//!
//! Every concurrent site in the workspace — the experiments fan-out
//! pool, the fleet summary memo, sslint's parallel lexer — builds on
//! the primitives re-exported here instead of naming `std::sync` or
//! `std::thread` directly (the `sync-shim` lint rule enforces this).
//! The payoff is a compile-time switch:
//!
//! - In a normal build (no `model` cfg) everything below is a zero-cost
//!   re-export or a `#[repr(transparent)]`-in-spirit wrapper over the
//!   `std` primitive; the only behavioral difference is that lock APIs
//!   are non-poisoning (`lock()` returns the guard directly — the
//!   workspace never observes poison because panics in lib code are
//!   forbidden by `panic-hygiene`).
//! - Under `RUSTFLAGS="--cfg model"` the same names resolve to
//!   [`ssmc::sync`] twins, and every synchronization operation routes
//!   through ssmc's schedule-exploring scheduler and vector-clock race
//!   detector. `crates/util/tests/model.rs` exhaustively explores the
//!   shared helpers below under that cfg.
//!
//! See DESIGN.md §8 for the model's semantics (SeqCst upgrade,
//! happens-before edges, preemption bounding).

// The one sanctioned `std::sync`/`std::thread` naming site in the
// workspace (allowlisted for the `sync-shim` rule).
#[cfg(not(model))]
mod real {
    use std::sync::PoisonError;

    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::{MutexGuard, OnceLock};
    pub use std::thread::{scope, Scope};

    /// A non-poisoning [`std::sync::Mutex`]: `lock()` hands back the
    /// guard directly, recovering from poison, because lib-code panics
    /// are forbidden workspace-wide and poison states are therefore
    /// unobservable by construction.
    pub struct Mutex<T> {
        real: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// A new unlocked mutex.
        pub const fn new(value: T) -> Self {
            Mutex {
                real: std::sync::Mutex::new(value),
            }
        }

        /// Acquires the lock, blocking until it is free.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.real.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Consumes the mutex, returning the value.
        pub fn into_inner(self) -> T {
            self.real
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Number of hardware threads available to this process, when the
    /// platform can report one.
    pub fn available_parallelism() -> Option<usize> {
        std::thread::available_parallelism()
            .ok()
            .map(std::num::NonZeroUsize::get)
    }
}

#[cfg(not(model))]
pub use real::*;

#[cfg(model)]
pub use ssmc::sync::{
    scope, AtomicBool, AtomicU64, AtomicUsize, Mutex, MutexGuard, OnceLock, Ordering, Scope,
};

/// Model-build stand-in for the hardware-thread count: a fixed small
/// value, so code branching on it stays deterministic under
/// exploration.
#[cfg(model)]
pub fn available_parallelism() -> Option<usize> {
    Some(2)
}

use std::collections::BTreeMap;
use std::sync::Arc;

/// Maps `f` over `0..len` with a pool of `jobs` worker threads,
/// returning the results in index order.
///
/// This is the workspace's canonical fan-out shape (the experiments
/// grid runner and sslint's parallel lexer both use it): workers pull
/// indices from a shared atomic cursor and publish into a pre-sized,
/// mutex-guarded slot table, so the merged output is byte-identical
/// for every worker count — including the `jobs == 1` path, which runs
/// inline without spawning. `jobs` is clamped to `1..=len`.
///
/// `T: Default` exists only to keep the merge total: every slot is
/// written exactly once before the scope ends, so the default is never
/// observed in practice (ssmc explores this exhaustively in
/// `crates/util/tests/model.rs`).
pub fn parallel_map<T, F>(len: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send + Default,
    F: Fn(usize) -> T + Sync,
{
    let workers = jobs.clamp(1, len.max(1));
    if workers == 1 {
        return (0..len).map(f).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..len).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= len {
                    break;
                }
                let value = f(idx);
                let mut slots = results.lock();
                slots[idx] = Some(value);
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(Option::unwrap_or_default)
        .collect()
}

/// A concurrent compute-once memo: one [`OnceLock`] slot per key.
///
/// Losers of a per-key compute race block on the slot and observe the
/// winner's value through an acquire edge, so `compute` runs at most
/// once per key and every caller sees the same `Arc` — the pattern the
/// fleet summary cache uses. The two-level shape (a mutex only around
/// the key table, computation outside it) keeps slow computations from
/// serializing unrelated keys.
pub struct MemoMap<K, V> {
    map: Mutex<BTreeMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: Ord, V> MemoMap<K, V> {
    /// An empty memo.
    pub const fn new() -> Self {
        MemoMap {
            map: Mutex::new(BTreeMap::new()),
        }
    }

    /// The memoized value for `key`, running `compute` to fill the slot
    /// if this is the first request (or racing requests lost the
    /// initialization).
    pub fn get_or_compute<F: FnOnce() -> V>(&self, key: K, compute: F) -> Arc<V> {
        let slot = {
            let mut map = self.map.lock();
            Arc::clone(map.entry(key).or_default())
        };
        Arc::clone(slot.get_or_init(|| Arc::new(compute())))
    }

    /// Drops every memoized slot (subsequent lookups recompute).
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

impl<K: Ord, V> Default for MemoMap<K, V> {
    fn default() -> Self {
        MemoMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_is_identical_across_worker_counts() {
        let reference: Vec<u64> = (0..17).map(|i| (i as u64) * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_map(17, jobs, |i| (i as u64) * 3 + 1), reference);
        }
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn memo_map_computes_once_per_key() {
        let memo: MemoMap<String, u32> = MemoMap::new();
        let calls = AtomicUsize::new(0);
        let a = memo.get_or_compute("a".to_owned(), || {
            calls.fetch_add(1, Ordering::Relaxed);
            7
        });
        let b = memo.get_or_compute("a".to_owned(), || {
            calls.fetch_add(1, Ordering::Relaxed);
            9
        });
        assert_eq!((*a, *b), (7, 7));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        memo.clear();
        let c = memo.get_or_compute("a".to_owned(), || {
            calls.fetch_add(1, Ordering::Relaxed);
            9
        });
        assert_eq!(*c, 9);
    }

    #[test]
    fn available_parallelism_reports_at_least_one_when_known() {
        if let Some(n) = available_parallelism() {
            assert!(n >= 1);
        }
    }
}
