//! Exhaustive model checks of `util::sync`'s shared helpers.
//!
//! Compiled only under `RUSTFLAGS="--cfg model"`, where `util::sync`
//! resolves to the ssmc-instrumented primitives — so the
//! `parallel_map` pool and `MemoMap` memo explored here are the exact
//! code the experiments grid runner, sslint's parallel lexer and the
//! fleet summary cache run in production builds.
//!
//! Run with: `RUSTFLAGS="--cfg model" cargo test -p softstage-util --test model`
#![cfg(model)]

use util::sync::{parallel_map, MemoMap, Ordering};

fn cfg(name: &str) -> ssmc::Config {
    let mut cfg = ssmc::Config::new(name);
    if cfg.trace_dir.is_none() && std::env::var_os("SSMC_TRACE_DIR").is_none() {
        cfg.trace_dir = Some(std::env::temp_dir());
    }
    cfg
}

/// The fan-out pool merges byte-identically on every schedule: slot
/// assignment is keyed by work index, not completion order.
#[test]
fn parallel_map_merge_is_schedule_independent() {
    let stats = ssmc::explore(cfg("util-parallel-map"), || {
        parallel_map(3, 2, |i| (i as u64 + 1) * 10)
    })
    .unwrap_or_else(|f| panic!("parallel_map failed model check: {f}"));
    assert!(
        stats.schedules >= 2,
        "expected >1 interleaving, got {stats:?}"
    );
    assert!(!stats.capped);
}

/// The serial path never spawns, so exploration sees exactly one
/// schedule.
#[test]
fn parallel_map_serial_path_has_one_schedule() {
    let stats = ssmc::explore(cfg("util-parallel-map-serial"), || {
        parallel_map(4, 1, |i| i as u32)
    })
    .unwrap_or_else(|f| panic!("serial parallel_map failed model check: {f}"));
    assert_eq!(stats.schedules, 1);
}

/// Two threads demanding the same key: the compute closure runs exactly
/// once, both observe the same value, and no interleaving races.
#[test]
fn memo_map_computes_once_under_contention() {
    let stats = ssmc::explore(cfg("util-memo-map"), || {
        let memo: MemoMap<u8, u64> = MemoMap::new();
        let calls = util::sync::AtomicUsize::new(0);
        let memo = &memo;
        let calls = &calls;
        let seen = util::sync::Mutex::new([0u64; 2]);
        util::sync::scope(|s| {
            let seen = &seen;
            for t in 0..2usize {
                s.spawn(move || {
                    let v = memo.get_or_compute(1, || {
                        calls.fetch_add(1, Ordering::Relaxed);
                        40 + 2
                    });
                    seen.lock()[t] = *v;
                });
            }
        });
        let snapshot = seen.into_inner();
        (calls.load(Ordering::Relaxed), snapshot)
    })
    .unwrap_or_else(|f| panic!("MemoMap failed model check: {f}"));
    assert!(
        stats.schedules >= 2,
        "expected >1 interleaving, got {stats:?}"
    );
}
