//! Property tests: the wire codec is a lossless bijection on valid
//! packets and total (never panics) on arbitrary input bytes.

use bytes::Bytes;
use proptest::prelude::*;
use xia_addr::{Dag, Principal, Xid};
use xia_wire::codec::{decode, encode};
use xia_wire::{Beacon, ConnId, L4, SegFlags, Segment, XiaPacket};

fn arb_xid(principal: Principal) -> impl Strategy<Value = Xid> {
    any::<[u8; 20]>().prop_map(move |id| Xid::new(principal, id))
}

fn arb_addr_pair() -> impl Strategy<Value = (Dag, Dag)> {
    (
        arb_xid(Principal::Cid),
        arb_xid(Principal::Nid),
        arb_xid(Principal::Hid),
        arb_xid(Principal::Hid),
    )
        .prop_map(|(cid, nid, hid, chid)| {
            (Dag::cid_with_fallback(cid, nid, hid), Dag::host(nid, chid))
        })
}

fn arb_l4() -> impl Strategy<Value = L4> {
    prop_oneof![
        (
            arb_xid(Principal::Hid),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<[bool; 4]>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..256),
        )
            .prop_map(|(initiator, port, seq, ack, f, window, payload)| {
                L4::Segment(Segment {
                    conn: ConnId { initiator, port },
                    seq,
                    ack,
                    flags: SegFlags {
                        syn: f[0],
                        ack: f[1],
                        fin: f[2],
                        rst: f[3],
                    },
                    window,
                    payload: Bytes::from(payload),
                })
            }),
        (
            arb_xid(Principal::Sid),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..256),
        )
            .prop_map(|(service, token, body)| L4::Control {
                service,
                token,
                body: Bytes::from(body),
            }),
        (
            arb_xid(Principal::Nid),
            arb_xid(Principal::Hid),
            -95.0f64..-20.0,
            any::<bool>(),
            arb_xid(Principal::Sid),
        )
            .prop_map(|(nid, hid, rss_dbm, has_vnf, sid)| {
                L4::Beacon(Beacon {
                    nid,
                    hid,
                    rss_dbm,
                    staging_vnf: has_vnf
                        .then(|| Dag::service_with_fallback(sid, nid, hid)),
                })
            }),
    ]
}

proptest! {
    /// encode → decode is the identity on any well-formed packet.
    #[test]
    fn roundtrip((dst, src) in arb_addr_pair(), l4 in arb_l4(), hop in any::<u8>(), use_ptr in any::<bool>()) {
        let mut pkt = XiaPacket::new(dst, src, l4);
        pkt.hop_limit = hop;
        if use_ptr {
            pkt.dst_ptr = 1; // a real node of the 3-node fallback DAG
        }
        let wire = encode(&pkt);
        prop_assert_eq!(decode(&wire).unwrap(), pkt);
    }

    /// decode is total: arbitrary bytes produce an error or a packet, and
    /// never panic.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// Any single-byte corruption either fails to decode or decodes to a
    /// (possibly different) packet — but never panics.
    #[test]
    fn corruption_is_safe((dst, src) in arb_addr_pair(), l4 in arb_l4(), idx_frac in 0.0f64..1.0, bit in 0u8..8) {
        let pkt = XiaPacket::new(dst, src, l4);
        let mut wire = encode(&pkt).to_vec();
        let idx = ((wire.len() as f64 - 1.0) * idx_frac) as usize;
        wire[idx] ^= 1 << bit;
        let _ = decode(&wire);
    }
}
