//! Property tests: the wire codec is a lossless bijection on valid
//! packets and total (never panics) on arbitrary input bytes.

use util::bytes::Bytes;
use util::check::{check, Gen};
use xia_addr::{Dag, Principal, Xid};
use xia_wire::codec::{decode, encode, CodecError};
use xia_wire::{Beacon, ConnId, SegFlags, Segment, XiaPacket, L4};

fn gen_xid(g: &mut Gen, principal: Principal) -> Xid {
    let bytes = g.bytes(20);
    let mut id = [0u8; 20];
    id.copy_from_slice(&bytes);
    Xid::new(principal, id)
}

fn gen_addr_pair(g: &mut Gen) -> (Dag, Dag) {
    let cid = gen_xid(g, Principal::Cid);
    let nid = gen_xid(g, Principal::Nid);
    let hid = gen_xid(g, Principal::Hid);
    let chid = gen_xid(g, Principal::Hid);
    (Dag::cid_with_fallback(cid, nid, hid), Dag::host(nid, chid))
}

fn gen_l4(g: &mut Gen) -> L4 {
    match g.usize_in(0, 2) {
        0 => {
            let initiator = gen_xid(g, Principal::Hid);
            let port = g.u64();
            let seq = g.u64();
            let ack = g.u64();
            let flags = SegFlags {
                syn: g.bool(),
                ack: g.bool(),
                fin: g.bool(),
                rst: g.bool(),
            };
            let window = g.u64();
            let len = g.usize_in(0, 255);
            let payload = Bytes::from(g.bytes(len));
            L4::Segment(Segment {
                conn: ConnId { initiator, port },
                seq,
                ack,
                flags,
                window,
                payload,
            })
        }
        1 => {
            let service = gen_xid(g, Principal::Sid);
            let token = g.u64();
            let len = g.usize_in(0, 255);
            L4::Control {
                service,
                token,
                body: Bytes::from(g.bytes(len)),
            }
        }
        _ => {
            let nid = gen_xid(g, Principal::Nid);
            let hid = gen_xid(g, Principal::Hid);
            let rss_dbm = g.f64_in(-95.0, -20.0);
            let staging_vnf = g
                .bool()
                .then(|| Dag::service_with_fallback(gen_xid(g, Principal::Sid), nid, hid));
            L4::Beacon(Beacon {
                nid,
                hid,
                rss_dbm,
                staging_vnf,
            })
        }
    }
}

/// encode → decode is the identity on any well-formed packet.
#[test]
fn roundtrip() {
    check("codec_roundtrip", 256, |g| {
        let (dst, src) = gen_addr_pair(g);
        let l4 = gen_l4(g);
        let mut pkt = XiaPacket::new(dst, src, l4);
        pkt.hop_limit = g.u64() as u8;
        if g.bool() {
            pkt.dst_ptr = 1; // a real node of the 3-node fallback DAG
        }
        let wire = encode(&pkt);
        assert_eq!(decode(&wire).unwrap(), pkt);
    });
}

/// decode is total: arbitrary bytes produce an error or a packet, and
/// never panic.
#[test]
fn decode_is_total() {
    check("decode_is_total", 256, |g| {
        let len = g.usize_in(0, 511);
        let bytes = g.bytes(len);
        let _ = decode(&bytes);
    });
}

/// Any single-bit corruption is rejected by the trailing checksum — the
/// parser never sees a damaged frame.
#[test]
fn corruption_is_rejected_by_checksum() {
    check("corruption_is_rejected_by_checksum", 256, |g| {
        let (dst, src) = gen_addr_pair(g);
        let l4 = gen_l4(g);
        let pkt = XiaPacket::new(dst, src, l4);
        let mut wire = encode(&pkt).to_vec();
        let idx = g.usize_in(0, wire.len() - 1);
        let bit = g.usize_in(0, 7) as u8;
        wire[idx] ^= 1 << bit;
        assert_eq!(decode(&wire), Err(CodecError::BadChecksum));
    });
}
