//! XIA wire formats shared by the whole stack.
//!
//! An [`XiaPacket`] carries a destination [`Dag`] plus a *DAG pointer*
//! recording how far along the address the packet has progressed, a source
//! DAG for replies, and one of three payloads:
//!
//! - [`Segment`]: a segment of the TCP-like reliable transport used for
//!   chunk and stream transfers (`xia-transport`),
//! - [`Control`](L4::Control): a connectionless datagram addressed to a
//!   service, used by SoftStage's staging signaling (Staging Manager ↔
//!   Staging VNF),
//! - [`Beacon`]: the access-network advertisement of the Network Joining
//!   Protocol, carrying RSS and the staging VNF address, heard on the
//!   client's *sensor* interface.
//!
//! Sizes reported to the simulator include realistic header overheads so
//! serialization delays match the prototype's on-air behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(unreachable_pub)]

pub mod codec;

use util::bytes::Bytes;
use xia_addr::{Dag, Xid};

/// Conventional maximum transport payload per packet (bytes), chosen so a
/// full segment plus XIA headers fits a 1500-byte Ethernet frame budget
/// with room for the larger XIA addresses.
pub const MSS: usize = 1400;

/// Bytes of header overhead per DAG node (XID + edge table entry).
const DAG_NODE_WIRE: usize = 24;
/// Fixed network-header overhead besides the DAGs.
const NET_HDR_WIRE: usize = 8;
/// Transport header overhead.
const SEG_HDR_WIRE: usize = 32;
/// Control/beacon framing overhead.
const CTRL_HDR_WIRE: usize = 16;

/// Identifier of one transport connection: the initiating host plus an
/// initiator-chosen port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId {
    /// HID of the connection initiator.
    pub initiator: Xid,
    /// Initiator-local port, unique per connection.
    pub port: u64,
}

/// Transport segment flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegFlags {
    /// Connection open request (carries no payload).
    pub syn: bool,
    /// Acknowledgment field is valid.
    pub ack: bool,
    /// Sender has no more data after this segment.
    pub fin: bool,
    /// Abort: peer state is gone.
    pub rst: bool,
}

impl SegFlags {
    /// Flags for a bare SYN.
    pub const SYN: SegFlags = SegFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// Flags for a SYN-ACK.
    pub const SYN_ACK: SegFlags = SegFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Flags for a pure ACK.
    pub const ACK: SegFlags = SegFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Flags for a RST.
    pub const RST: SegFlags = SegFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
    };
}

/// A reliable-transport segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The connection this segment belongs to.
    pub conn: ConnId,
    /// First byte offset carried by `payload` (SYN/FIN occupy one sequence
    /// number each, as in TCP).
    pub seq: u64,
    /// Cumulative acknowledgment (next expected byte), valid when
    /// `flags.ack`.
    pub ack: u64,
    /// Segment flags.
    pub flags: SegFlags,
    /// Receiver window in bytes.
    pub window: u64,
    /// Payload bytes (zero-copy slice of the chunk being transferred).
    pub payload: Bytes,
}

impl Segment {
    /// Wire size of this segment including its header.
    pub fn wire_size(&self) -> usize {
        SEG_HDR_WIRE + self.payload.len()
    }
}

/// Access-network advertisement (Network Joining Protocol beacon).
///
/// Broadcast periodically by edge networks; the client's sensor interface
/// uses it for RSS-based network selection and staging-VNF discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct Beacon {
    /// Network identifier of the advertising edge network.
    pub nid: Xid,
    /// HID of the advertising access router.
    pub hid: Xid,
    /// Received signal strength the client would see, in dBm.
    pub rss_dbm: f64,
    /// Address of the staging VNF in this network, if deployed.
    pub staging_vnf: Option<Dag>,
}

/// Transport-layer payload of an [`XiaPacket`].
#[derive(Debug, Clone, PartialEq)]
pub enum L4 {
    /// Reliable-transport segment.
    Segment(Segment),
    /// Connectionless service datagram: `(service, correlation id, body)`.
    /// Delivery is best-effort; applications retry.
    Control {
        /// The service (SID) this datagram addresses.
        service: Xid,
        /// Correlation id echoed in replies.
        token: u64,
        /// Serialized application message.
        body: Bytes,
    },
    /// Network advertisement heard on the sensor interface.
    Beacon(Beacon),
}

/// An XIA network-layer packet.
#[derive(Debug, Clone, PartialEq)]
pub struct XiaPacket {
    /// Destination address.
    pub dst: Dag,
    /// Index of the last reached DAG node ([`xia_addr::dag::SOURCE`] if
    /// none yet). Routers advance this as the packet makes progress.
    pub dst_ptr: usize,
    /// Source address for replies.
    pub src: Dag,
    /// Remaining hops before the packet is discarded.
    pub hop_limit: u8,
    /// Transport payload.
    pub l4: L4,
}

impl XiaPacket {
    /// Default hop limit for new packets.
    pub(crate) const DEFAULT_HOP_LIMIT: u8 = 32;

    /// Creates a packet at the conceptual source of its destination DAG.
    pub fn new(dst: Dag, src: Dag, l4: L4) -> Self {
        XiaPacket {
            dst,
            dst_ptr: xia_addr::dag::SOURCE,
            src,
            hop_limit: Self::DEFAULT_HOP_LIMIT,
            l4,
        }
    }

    /// The final intent of the destination address.
    pub fn intent(&self) -> Xid {
        self.dst.intent()
    }
}

impl simnet::Message for XiaPacket {
    fn wire_size(&self) -> usize {
        let dags = (self.dst.nodes().len() + self.src.nodes().len()) * DAG_NODE_WIRE;
        let l4 = match &self.l4 {
            L4::Segment(seg) => seg.wire_size(),
            L4::Control { body, .. } => CTRL_HDR_WIRE + body.len(),
            L4::Beacon(b) => {
                CTRL_HDR_WIRE
                    + 48
                    + b.staging_vnf
                        .as_ref()
                        .map_or(0, |d| d.nodes().len() * DAG_NODE_WIRE)
            }
        };
        NET_HDR_WIRE + dags + l4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::Message;
    use xia_addr::Principal;

    fn addrs() -> (Dag, Dag) {
        let cid = Xid::for_content(b"c");
        let nid = Xid::new_random(Principal::Nid, 1);
        let hid = Xid::new_random(Principal::Hid, 2);
        let chid = Xid::new_random(Principal::Hid, 3);
        (Dag::cid_with_fallback(cid, nid, hid), Dag::host(nid, chid))
    }

    fn conn() -> ConnId {
        ConnId {
            initiator: Xid::new_random(Principal::Hid, 3),
            port: 7,
        }
    }

    #[test]
    fn data_segment_wire_size_includes_payload_and_headers() {
        let (dst, src) = addrs();
        let seg = Segment {
            conn: conn(),
            seq: 0,
            ack: 0,
            flags: SegFlags::default(),
            window: 65535,
            payload: Bytes::from(vec![0u8; MSS]),
        };
        let pkt = XiaPacket::new(dst, src, L4::Segment(seg));
        // 3 + 2 DAG nodes * 24 + 8 net hdr + 32 seg hdr + payload.
        assert_eq!(pkt.wire_size(), 8 + 5 * 24 + 32 + MSS);
        // Stays within a jumbo-free budget of 1600 bytes.
        assert!(pkt.wire_size() <= 1600);
    }

    #[test]
    fn pure_ack_is_small() {
        let (dst, src) = addrs();
        let seg = Segment {
            conn: conn(),
            seq: 0,
            ack: 1400,
            flags: SegFlags::ACK,
            window: 65535,
            payload: Bytes::new(),
        };
        let pkt = XiaPacket::new(dst, src, L4::Segment(seg));
        assert!(pkt.wire_size() < 200);
    }

    #[test]
    fn new_packet_starts_at_source_with_default_ttl() {
        let (dst, src) = addrs();
        let pkt = XiaPacket::new(
            dst.clone(),
            src,
            L4::Control {
                service: Xid::new_random(Principal::Sid, 9),
                token: 1,
                body: Bytes::from_static(b"{}"),
            },
        );
        assert_eq!(pkt.dst_ptr, xia_addr::dag::SOURCE);
        assert_eq!(pkt.hop_limit, XiaPacket::DEFAULT_HOP_LIMIT);
        assert_eq!(pkt.intent(), dst.intent());
    }

    #[test]
    fn beacon_size_grows_with_vnf_dag() {
        let (dst, src) = addrs();
        let nid = Xid::new_random(Principal::Nid, 1);
        let hid = Xid::new_random(Principal::Hid, 2);
        let bare = XiaPacket::new(
            dst.clone(),
            src.clone(),
            L4::Beacon(Beacon {
                nid,
                hid,
                rss_dbm: -60.0,
                staging_vnf: None,
            }),
        );
        let with_vnf = XiaPacket::new(
            dst,
            src,
            L4::Beacon(Beacon {
                nid,
                hid,
                rss_dbm: -60.0,
                staging_vnf: Some(Dag::service_with_fallback(
                    Xid::new_random(Principal::Sid, 4),
                    nid,
                    hid,
                )),
            }),
        );
        assert!(with_vnf.wire_size() > bare.wire_size());
    }

    #[test]
    fn flag_constants() {
        assert!(SegFlags::SYN.syn && !SegFlags::SYN.ack);
        assert!(SegFlags::SYN_ACK.syn && SegFlags::SYN_ACK.ack);
        assert!(SegFlags::ACK.ack && !SegFlags::ACK.syn);
        assert!(SegFlags::RST.rst);
    }
}
