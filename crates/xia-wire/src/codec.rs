//! Byte-level serialization of [`XiaPacket`].
//!
//! The simulator passes packets as structured values for speed, but a
//! deployable stack needs a wire format. This codec defines one —
//! versioned, length-delimited, with explicit principal tags — and
//! guarantees `decode(encode(p)) == p`. It is exercised by unit and
//! property tests and can frame packets for a real datagram substrate.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! u8  version (0x01)
//! dag dst          — see below
//! u8  dst_ptr      (0xFF = SOURCE)
//! dag src
//! u8  hop_limit
//! u8  l4 tag       (0 = segment, 1 = control, 2 = beacon)
//! ... l4 body
//!
//! dag := u8 node_count, u8 entry_count, entry indices (u8 each),
//!        node_count × { u8 principal, [u8; 20] id,
//!                       u8 edge_count, edges (u8 each) }
//!
//! u32 checksum     — FNV-1a over everything above, verified before any
//!                    parsing; a failed check is [`CodecError::BadChecksum`]
//! ```
//!
//! The trailing checksum is what lets the stack treat in-flight bit flips
//! (see `simnet::fault`) as losses rather than parsing garbage.

use util::bytes::{Bytes, BytesMut};
use xia_addr::{dag::SOURCE, Dag, DagNode, Principal, Xid};

use crate::{Beacon, ConnId, SegFlags, Segment, XiaPacket, L4};

/// Wire format version emitted by [`encode`].
pub(crate) const WIRE_VERSION: u8 = 0x01;

/// Errors produced by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the structure requires.
    Truncated,
    /// Unknown wire version byte.
    BadVersion,
    /// Unknown principal tag.
    BadPrincipal,
    /// Unknown L4 tag.
    BadL4Tag,
    /// The encoded DAG fails validation (cycle, dangling edge, no sink).
    BadDag,
    /// A DAG pointer is outside the DAG.
    BadPointer,
    /// The trailing checksum does not match: the frame was corrupted in
    /// flight and must be treated as lost.
    BadChecksum,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            CodecError::Truncated => "truncated packet",
            CodecError::BadVersion => "unsupported wire version",
            CodecError::BadPrincipal => "unknown principal tag",
            CodecError::BadL4Tag => "unknown transport tag",
            CodecError::BadDag => "invalid address graph",
            CodecError::BadPointer => "address pointer out of range",
            CodecError::BadChecksum => "wire checksum mismatch",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for CodecError {}

/// 32-bit FNV-1a over `body`, the checksum appended by [`encode`].
pub(crate) fn checksum(body: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in body {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn principal_tag(p: Principal) -> u8 {
    match p {
        Principal::Cid => 0,
        Principal::Hid => 1,
        Principal::Nid => 2,
        Principal::Sid => 3,
    }
}

fn principal_from(tag: u8) -> Result<Principal, CodecError> {
    match tag {
        0 => Ok(Principal::Cid),
        1 => Ok(Principal::Hid),
        2 => Ok(Principal::Nid),
        3 => Ok(Principal::Sid),
        _ => Err(CodecError::BadPrincipal),
    }
}

fn put_xid(out: &mut BytesMut, xid: &Xid) {
    out.put_u8(principal_tag(xid.principal()));
    out.put_slice(xid.id());
}

fn put_dag(out: &mut BytesMut, dag: &Dag) {
    let nodes = dag.nodes();
    out.put_u8(nodes.len() as u8);
    let entry = dag.out_edges(SOURCE);
    out.put_u8(entry.len() as u8);
    for &e in entry {
        out.put_u8(e as u8);
    }
    for node in nodes {
        put_xid(out, &node.xid);
        out.put_u8(node.edges.len() as u8);
        for &e in &node.edges {
            out.put_u8(e as u8);
        }
    }
}

/// Encodes `pkt` into its wire representation.
pub fn encode(pkt: &XiaPacket) -> Bytes {
    let mut out = BytesMut::with_capacity(256 + payload_len(pkt));
    out.put_u8(WIRE_VERSION);
    put_dag(&mut out, &pkt.dst);
    out.put_u8(if pkt.dst_ptr == SOURCE {
        0xFF
    } else {
        pkt.dst_ptr as u8
    });
    put_dag(&mut out, &pkt.src);
    out.put_u8(pkt.hop_limit);
    match &pkt.l4 {
        L4::Segment(seg) => {
            out.put_u8(0);
            put_xid(&mut out, &seg.conn.initiator);
            out.put_u64(seg.conn.port);
            out.put_u64(seg.seq);
            out.put_u64(seg.ack);
            let flags = u8::from(seg.flags.syn)
                | u8::from(seg.flags.ack) << 1
                | u8::from(seg.flags.fin) << 2
                | u8::from(seg.flags.rst) << 3;
            out.put_u8(flags);
            out.put_u64(seg.window);
            out.put_u32(seg.payload.len() as u32);
            out.put_slice(&seg.payload);
        }
        L4::Control {
            service,
            token,
            body,
        } => {
            out.put_u8(1);
            put_xid(&mut out, service);
            out.put_u64(*token);
            out.put_u32(body.len() as u32);
            out.put_slice(body);
        }
        L4::Beacon(b) => {
            out.put_u8(2);
            put_xid(&mut out, &b.nid);
            put_xid(&mut out, &b.hid);
            out.put_u64(b.rss_dbm.to_bits());
            match &b.staging_vnf {
                Some(dag) => {
                    out.put_u8(1);
                    put_dag(&mut out, dag);
                }
                None => out.put_u8(0),
            }
        }
    }
    let sum = checksum(&out);
    out.put_u32(sum);
    out.freeze()
}

fn payload_len(pkt: &XiaPacket) -> usize {
    match &pkt.l4 {
        L4::Segment(seg) => seg.payload.len(),
        L4::Control { body, .. } => body.len(),
        L4::Beacon(_) => 0,
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(be_fold(self.take(4)?) as u32)
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(be_fold(self.take(8)?))
    }

    fn xid(&mut self) -> Result<Xid, CodecError> {
        let p = principal_from(self.u8()?)?;
        let mut id = [0u8; 20];
        id.copy_from_slice(self.take(20)?);
        Ok(Xid::new(p, id))
    }

    fn dag(&mut self) -> Result<Dag, CodecError> {
        let node_count = self.u8()? as usize;
        let entry_count = self.u8()? as usize;
        let mut entry = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            entry.push(self.u8()? as usize);
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let xid = self.xid()?;
            let edge_count = self.u8()? as usize;
            let mut edges = Vec::with_capacity(edge_count);
            for _ in 0..edge_count {
                edges.push(self.u8()? as usize);
            }
            nodes.push(DagNode { xid, edges });
        }
        Dag::from_parts(nodes, entry).map_err(|_| CodecError::BadDag)
    }
}

/// Folds up to 8 big-endian bytes into a `u64` without a fallible slice
/// conversion.
fn be_fold(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
}

/// Decodes a packet previously produced by [`encode`].
///
/// The trailing checksum is verified before any structural parsing, so a
/// corrupted frame is rejected as [`CodecError::BadChecksum`] rather than
/// misparsed.
///
/// # Errors
///
/// Returns a [`CodecError`] describing the first structural problem.
pub fn decode(wire: &[u8]) -> Result<XiaPacket, CodecError> {
    if wire.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let (body, tail) = wire.split_at(wire.len() - 4);
    let expected = be_fold(tail) as u32;
    if checksum(body) != expected {
        return Err(CodecError::BadChecksum);
    }
    let mut r = Reader { buf: body, pos: 0 };
    if r.u8()? != WIRE_VERSION {
        return Err(CodecError::BadVersion);
    }
    let dst = r.dag()?;
    let ptr_raw = r.u8()?;
    let dst_ptr = if ptr_raw == 0xFF {
        SOURCE
    } else {
        let p = ptr_raw as usize;
        if p >= dst.nodes().len() {
            return Err(CodecError::BadPointer);
        }
        p
    };
    let src = r.dag()?;
    let hop_limit = r.u8()?;
    let l4 = match r.u8()? {
        0 => {
            let initiator = r.xid()?;
            let port = r.u64()?;
            let seq = r.u64()?;
            let ack = r.u64()?;
            let f = r.u8()?;
            let window = r.u64()?;
            let len = r.u32()? as usize;
            let payload = Bytes::copy_from_slice(r.take(len)?);
            L4::Segment(Segment {
                conn: ConnId { initiator, port },
                seq,
                ack,
                flags: SegFlags {
                    syn: f & 1 != 0,
                    ack: f & 2 != 0,
                    fin: f & 4 != 0,
                    rst: f & 8 != 0,
                },
                window,
                payload,
            })
        }
        1 => {
            let service = r.xid()?;
            let token = r.u64()?;
            let len = r.u32()? as usize;
            let body = Bytes::copy_from_slice(r.take(len)?);
            L4::Control {
                service,
                token,
                body,
            }
        }
        2 => {
            let nid = r.xid()?;
            let hid = r.xid()?;
            let rss_dbm = f64::from_bits(r.u64()?);
            let staging_vnf = match r.u8()? {
                0 => None,
                _ => Some(r.dag()?),
            };
            L4::Beacon(Beacon {
                nid,
                hid,
                rss_dbm,
                staging_vnf,
            })
        }
        _ => return Err(CodecError::BadL4Tag),
    };
    Ok(XiaPacket {
        dst,
        dst_ptr,
        src,
        hop_limit,
        l4,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Dag, Dag) {
        let cid = Xid::for_content(b"c");
        let nid = Xid::new_random(Principal::Nid, 1);
        let hid = Xid::new_random(Principal::Hid, 2);
        let chid = Xid::new_random(Principal::Hid, 3);
        (Dag::cid_with_fallback(cid, nid, hid), Dag::host(nid, chid))
    }

    fn sample_segment() -> XiaPacket {
        let (dst, src) = addrs();
        XiaPacket {
            dst,
            dst_ptr: 1,
            src,
            hop_limit: 17,
            l4: L4::Segment(Segment {
                conn: ConnId {
                    initiator: Xid::new_random(Principal::Hid, 9),
                    port: 0xDEAD_BEEF,
                },
                seq: 42,
                ack: 77,
                flags: SegFlags {
                    syn: true,
                    ack: true,
                    fin: false,
                    rst: false,
                },
                window: 1 << 20,
                payload: Bytes::from_static(b"hello chunk bytes"),
            }),
        }
    }

    #[test]
    fn segment_roundtrip() {
        let pkt = sample_segment();
        assert_eq!(decode(&encode(&pkt)).unwrap(), pkt);
    }

    #[test]
    fn control_roundtrip() {
        let (dst, src) = addrs();
        let pkt = XiaPacket::new(
            dst,
            src,
            L4::Control {
                service: Xid::new_random(Principal::Sid, 5),
                token: u64::MAX,
                body: Bytes::from_static(b"{\"stage\":[]}"),
            },
        );
        assert_eq!(decode(&encode(&pkt)).unwrap(), pkt);
    }

    #[test]
    fn beacon_roundtrip_with_and_without_vnf() {
        let (dst, src) = addrs();
        let nid = Xid::new_random(Principal::Nid, 1);
        let hid = Xid::new_random(Principal::Hid, 2);
        for vnf in [
            None,
            Some(Dag::service_with_fallback(
                Xid::new_random(Principal::Sid, 3),
                nid,
                hid,
            )),
        ] {
            let pkt = XiaPacket::new(
                dst.clone(),
                src.clone(),
                L4::Beacon(Beacon {
                    nid,
                    hid,
                    rss_dbm: -61.25,
                    staging_vnf: vnf,
                }),
            );
            assert_eq!(decode(&encode(&pkt)).unwrap(), pkt);
        }
    }

    #[test]
    fn source_pointer_roundtrips() {
        let mut pkt = sample_segment();
        pkt.dst_ptr = SOURCE;
        assert_eq!(decode(&encode(&pkt)).unwrap().dst_ptr, SOURCE);
    }

    /// Recomputes the trailing checksum after a test mutated the body, so
    /// structural errors are reachable past the checksum gate.
    fn reseal(mut wire: Vec<u8>) -> Vec<u8> {
        let body_len = wire.len() - 4;
        let sum = checksum(&wire[..body_len]);
        wire[body_len..].copy_from_slice(&sum.to_be_bytes());
        wire
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        let wire = encode(&sample_segment());
        for cut in 0..wire.len() {
            // Short prefixes fail the length gate; longer ones fail the
            // checksum; resealed truncations reach the structural parser.
            assert!(decode(&wire[..cut]).is_err(), "cut {cut}");
            if cut >= 4 {
                let resealed = reseal(wire[..cut].to_vec());
                assert!(decode(&resealed).is_err(), "resealed cut {cut}");
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught_by_the_checksum() {
        let wire = encode(&sample_segment()).to_vec();
        for byte in 0..wire.len() {
            let mut bad = wire.clone();
            bad[byte] ^= 0x10;
            assert_eq!(
                decode(&bad),
                Err(CodecError::BadChecksum),
                "flip in byte {byte}"
            );
        }
    }

    #[test]
    fn bad_version_and_tags_rejected() {
        let wire = encode(&sample_segment()).to_vec();
        let mut bad = wire.clone();
        bad[0] = 0x7F;
        assert_eq!(decode(&reseal(bad)), Err(CodecError::BadVersion));
        let mut bad = wire.clone();
        bad[1] = 0; // dst node count 0 → invalid DAG
        assert!(decode(&reseal(bad)).is_err());
    }

    #[test]
    fn out_of_range_pointer_rejected() {
        let pkt = sample_segment();
        let wire = encode(&pkt).to_vec();
        // dst has 3 nodes; its ptr byte sits right after the dst dag.
        // Locate it by re-encoding with a sentinel: simpler to decode and
        // check that ptr 7 fails.
        // Find offset: 1 (version) + dag bytes.
        let dag_len = {
            let mut b = BytesMut::new();
            put_dag(&mut b, &pkt.dst);
            b.len()
        };
        let mut bad = wire.clone();
        bad[1 + dag_len] = 7;
        assert_eq!(decode(&reseal(bad)), Err(CodecError::BadPointer));
    }
}
