//! Beacon transmission by edge networks (the Network Joining Protocol).
//!
//! Access networks "advertise their presence with any usable VNF
//! information in their beacon message" (paper, footnote 2). The
//! [`BeaconApp`] runs on the edge router's host stack and periodically
//! broadcasts a [`Beacon`] on each configured radio link; transmissions
//! into a coverage gap die on the downed link, so coverage emerges from
//! the link schedule.

use simnet::{LinkId, SimDuration};
use xia_addr::{Dag, Xid};
use xia_host::{App, HostCtx};
use xia_wire::{Beacon, XiaPacket, L4};

use crate::schedule::CoverageSchedule;

/// Periodically advertises an edge network on its radio links.
#[derive(Debug)]
pub struct BeaconApp {
    nid: Xid,
    hid: Xid,
    /// Radio links to advertise on (set after links are created).
    pub radio_links: Vec<LinkId>,
    /// Advertised staging VNF address, if this network deploys one.
    pub staging_vnf: Option<Dag>,
    interval: SimDuration,
    /// RSS model: the client-perceived signal strength over time for this
    /// network (`(schedule, network index)`), or a flat default.
    pub rss_model: Option<(CoverageSchedule, usize)>,
    /// Beacons transmitted (including those lost to downed links).
    pub sent: u64,
}

impl BeaconApp {
    /// Creates a beacon app for network `nid` / access router `hid`,
    /// advertising every `interval`.
    pub fn new(nid: Xid, hid: Xid, interval: SimDuration) -> Self {
        BeaconApp {
            nid,
            hid,
            radio_links: Vec::new(),
            staging_vnf: None,
            interval,
            rss_model: None,
            sent: 0,
        }
    }

    fn rss_now(&self, ctx: &HostCtx<'_, '_>) -> f64 {
        match &self.rss_model {
            Some((schedule, net)) => schedule.rss(*net, ctx.now()).unwrap_or(-90.0),
            None => -60.0,
        }
    }
}

impl App for BeaconApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_, '_>) {
        ctx.set_app_timer(SimDuration::ZERO, 0);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, _key: u64) {
        let rss = self.rss_now(ctx);
        for &link in &self.radio_links {
            let beacon = Beacon {
                nid: self.nid,
                hid: self.hid,
                rss_dbm: rss,
                staging_vnf: self.staging_vnf.clone(),
            };
            // Beacons are link-local broadcasts: destination is the
            // advertising network itself; receivers never route them.
            let pkt = XiaPacket::new(
                Dag::host(self.nid, self.hid),
                Dag::host(self.nid, self.hid),
                L4::Beacon(beacon),
            );
            ctx.send_on_link(link, pkt);
            self.sent += 1;
        }
        ctx.set_app_timer(self.interval, 0);
    }
}
