//! The network sensor: beacon-driven discovery of edge networks and their
//! staging VNFs (the paper's *Network Sensor* module).

use std::collections::BTreeMap;

use simnet::{LinkId, SimDuration, SimTime};
use xia_addr::{Dag, Xid};
use xia_wire::Beacon;

/// Everything known about one discovered edge network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkKnowledge {
    /// The network identifier.
    pub nid: Xid,
    /// HID of its access router.
    pub hid: Xid,
    /// The local interface the beacon was heard on.
    pub link: LinkId,
    /// Most recent RSS, dBm.
    pub rss_dbm: f64,
    /// When the last beacon was heard.
    pub last_heard: SimTime,
    /// Advertised staging VNF, if the network deploys one.
    pub staging_vnf: Option<Dag>,
}

/// Tracks networks heard on the sensor interface.
///
/// The client uses a second (or virtual) interface purely for scanning, so
/// discovery proceeds even while the data interface transfers chunks.
#[derive(Debug)]
pub struct NetworkSensor {
    networks: BTreeMap<Xid, NetworkKnowledge>,
    /// A network unheard for this long is considered gone.
    pub beacon_timeout: SimDuration,
}

impl Default for NetworkSensor {
    fn default() -> Self {
        NetworkSensor::new(SimDuration::from_millis(400))
    }
}

impl NetworkSensor {
    /// Creates a sensor that expires networks after `beacon_timeout`.
    pub fn new(beacon_timeout: SimDuration) -> Self {
        NetworkSensor {
            networks: BTreeMap::new(),
            beacon_timeout,
        }
    }

    /// Absorbs a beacon heard on `link` at `now`.
    pub fn on_beacon(&mut self, now: SimTime, link: LinkId, beacon: &Beacon) {
        self.networks.insert(
            beacon.nid,
            NetworkKnowledge {
                nid: beacon.nid,
                hid: beacon.hid,
                link,
                rss_dbm: beacon.rss_dbm,
                last_heard: now,
                staging_vnf: beacon.staging_vnf.clone(),
            },
        );
    }

    /// Forgets all networks heard on `link` (the interface went down).
    pub(crate) fn on_link_down(&mut self, link: LinkId) {
        self.networks.retain(|_, n| n.link != link);
    }

    /// Whether a record is still fresh at `now`.
    fn fresh(&self, n: &NetworkKnowledge, now: SimTime) -> bool {
        now - n.last_heard <= self.beacon_timeout
    }

    /// Knowledge about `nid`, if fresh.
    pub fn get(&self, nid: &Xid, now: SimTime) -> Option<&NetworkKnowledge> {
        self.networks.get(nid).filter(|n| self.fresh(n, now))
    }

    /// The strongest fresh network, if any.
    pub(crate) fn best(&self, now: SimTime) -> Option<&NetworkKnowledge> {
        self.networks
            .values()
            .filter(|n| self.fresh(n, now))
            .max_by(|a, b| a.rss_dbm.total_cmp(&b.rss_dbm))
    }

    /// All fresh networks.
    #[cfg(test)]
    pub(crate) fn visible(&self, now: SimTime) -> Vec<&NetworkKnowledge> {
        self.networks
            .values()
            .filter(|n| self.fresh(n, now))
            .collect()
    }

    /// The staging VNF of `nid`, if known and fresh.
    pub fn vnf_of(&self, nid: &Xid, now: SimTime) -> Option<&Dag> {
        self.get(nid, now).and_then(|n| n.staging_vnf.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xia_addr::Principal;

    fn beacon(seed: u64, rss: f64, vnf: bool) -> Beacon {
        let nid = Xid::new_random(Principal::Nid, seed);
        let hid = Xid::new_random(Principal::Hid, seed);
        Beacon {
            nid,
            hid,
            rss_dbm: rss,
            staging_vnf: vnf.then(|| {
                Dag::service_with_fallback(Xid::new_random(Principal::Sid, seed), nid, hid)
            }),
        }
    }

    fn link(i: usize) -> LinkId {
        // Mint LinkIds through a throwaway sim.
        let mut sim: simnet::Simulator<TestMsg> = simnet::Simulator::new(0);
        let nodes: Vec<_> = (0..i + 2).map(|_| sim.add_node(Box::new(Nop))).collect();
        (0..=i)
            .map(|k| {
                sim.add_link(
                    nodes[k],
                    nodes[k + 1],
                    simnet::LinkConfig::wired(1, SimDuration::ZERO),
                )
            })
            .last()
            .expect("nonempty")
    }

    #[derive(Clone, Debug)]
    struct TestMsg;
    impl simnet::Message for TestMsg {
        fn wire_size(&self) -> usize {
            1
        }
    }
    struct Nop;
    impl simnet::Node<TestMsg> for Nop {
        fn on_packet(&mut self, _: &mut simnet::Context<'_, TestMsg>, _: LinkId, _: TestMsg) {}
    }

    #[test]
    fn best_prefers_strongest_fresh() {
        let mut s = NetworkSensor::default();
        let t0 = SimTime::from_micros(0);
        let b1 = beacon(1, -70.0, false);
        let b2 = beacon(2, -55.0, true);
        s.on_beacon(t0, link(0), &b1);
        s.on_beacon(t0, link(1), &b2);
        assert_eq!(s.best(t0).unwrap().nid, b2.nid);
        assert_eq!(s.visible(t0).len(), 2);
        // b2 ages out.
        let later = t0 + SimDuration::from_millis(500);
        s.on_beacon(later, link(0), &b1);
        assert_eq!(s.best(later).unwrap().nid, b1.nid);
        assert_eq!(s.visible(later).len(), 1);
    }

    #[test]
    fn vnf_discovery() {
        let mut s = NetworkSensor::default();
        let t0 = SimTime::from_micros(0);
        let with = beacon(3, -60.0, true);
        let without = beacon(4, -60.0, false);
        s.on_beacon(t0, link(0), &with);
        s.on_beacon(t0, link(0), &without);
        assert!(s.vnf_of(&with.nid, t0).is_some());
        assert!(s.vnf_of(&without.nid, t0).is_none());
    }

    #[test]
    fn link_down_forgets_networks() {
        let mut s = NetworkSensor::default();
        let t0 = SimTime::from_micros(0);
        let l0 = link(0);
        let b = beacon(5, -60.0, false);
        s.on_beacon(t0, l0, &b);
        assert!(s.get(&b.nid, t0).is_some());
        s.on_link_down(l0);
        assert!(s.get(&b.nid, t0).is_none());
    }

    #[test]
    fn rss_updates_on_newer_beacon() {
        let mut s = NetworkSensor::default();
        let l0 = link(0);
        let mut b = beacon(6, -80.0, false);
        s.on_beacon(SimTime::from_micros(0), l0, &b);
        b.rss_dbm = -50.0;
        let t1 = SimTime::from_micros(100_000);
        s.on_beacon(t1, l0, &b);
        assert_eq!(s.get(&b.nid, t1).unwrap().rss_dbm, -50.0);
    }
}
