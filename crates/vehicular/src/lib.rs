//! Vehicular connectivity emulation.
//!
//! The SoftStage paper evaluates on an indoor WiFi testbed whose radio
//! environment is scripted from the Cabernet dataset percentiles
//! (encounter 3–12 s, disconnection 8–100 s, loss 20–40 %) plus day-long
//! Beijing wardriving traces. This crate provides the equivalents:
//!
//! - [`schedule::CoverageSchedule`]: when the vehicle is inside which edge
//!   network's coverage, with drive-by RSS ramps; generators for the
//!   paper's alternating (micro-benchmark) and overlapping (handoff
//!   policy) patterns,
//! - [`trace`]: a JSON connectivity-trace format, a wardriving-trace
//!   synthesizer, and conversion into coverage schedules (Fig. 7),
//! - [`beacon::BeaconApp`]: Network-Joining-Protocol beacons carrying RSS
//!   and the staging VNF address,
//! - [`sensor::NetworkSensor`]: the client's second-interface scanner,
//! - [`roam::Roamer`]: association, layer-3 handoff and active session
//!   migration mechanics shared by the baseline client and SoftStage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
pub mod roam;
pub mod schedule;
pub mod sensor;
pub mod trace;

pub use beacon::BeaconApp;
pub use roam::{RoamConfig, RoamEvent, RoamState, Roamer, ROAM_ASSOC_TIMER};
pub use schedule::{CoverageInterval, CoverageSchedule};
pub use sensor::{NetworkKnowledge, NetworkSensor};
pub use trace::{synthesize_wardriving, ConnectivityTrace, TracePeriod, WardrivingParams};
