//! Coverage schedules: when the vehicle is inside which network's range.

use simnet::{SimDuration, SimTime};
use util::json::{FromJson, Json, JsonError, ToJson};

/// One contiguous interval of coverage by one network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageInterval {
    /// Index of the covering network (into the experiment's network list).
    pub network: usize,
    /// Coverage start (µs).
    pub start_us: u64,
    /// Coverage end (µs).
    pub end_us: u64,
    /// Peak RSS at the middle of the interval, in dBm.
    pub peak_rss_dbm: f64,
}

impl CoverageInterval {
    /// Coverage start time.
    pub fn start(&self) -> SimTime {
        SimTime::from_micros(self.start_us)
    }

    /// Coverage end time.
    pub fn end(&self) -> SimTime {
        SimTime::from_micros(self.end_us)
    }

    /// Whether `t` falls inside the interval.
    pub(crate) fn covers(&self, t: SimTime) -> bool {
        self.start_us <= t.as_micros() && t.as_micros() < self.end_us
    }

    /// RSS the client sees at time `t`: a triangular ramp from the cell
    /// edge (−90 dBm) up to `peak_rss_dbm` mid-interval and back — the
    /// drive-by pattern of a vehicular encounter.
    pub(crate) fn rss_at(&self, t: SimTime) -> Option<f64> {
        if !self.covers(t) {
            return None;
        }
        let dur = (self.end_us - self.start_us) as f64;
        let frac = (t.as_micros() - self.start_us) as f64 / dur;
        let edge = -90.0;
        let shape = 1.0 - (2.0 * frac - 1.0).abs(); // 0 at edges, 1 mid.
        Some(edge + (self.peak_rss_dbm - edge) * shape)
    }
}

/// The full coverage schedule of one drive.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoverageSchedule {
    /// Coverage intervals, sorted by start time.
    pub intervals: Vec<CoverageInterval>,
    /// Number of distinct networks referenced.
    pub networks: usize,
}

impl CoverageSchedule {
    /// Builds a schedule from intervals (sorted by start time).
    pub fn new(mut intervals: Vec<CoverageInterval>) -> Self {
        intervals.sort_by_key(|i| i.start_us);
        let networks = intervals.iter().map(|i| i.network + 1).max().unwrap_or(0);
        CoverageSchedule {
            intervals,
            networks,
        }
    }

    /// The paper's micro-benchmark pattern: the client alternates between
    /// `networks` edge networks, staying `encounter` in each and spending
    /// `disconnection` out of coverage in between, until `total`.
    pub fn alternating(
        encounter: SimDuration,
        disconnection: SimDuration,
        networks: usize,
        total: SimDuration,
    ) -> Self {
        assert!(networks >= 1, "need at least one network");
        let mut intervals = Vec::new();
        let mut t = 0u64;
        let mut net = 0usize;
        while t < total.as_micros() {
            let end = t + encounter.as_micros();
            intervals.push(CoverageInterval {
                network: net,
                start_us: t,
                end_us: end,
                peak_rss_dbm: -55.0,
            });
            t = end + disconnection.as_micros();
            net = (net + 1) % networks;
        }
        CoverageSchedule::new(intervals)
    }

    /// The handoff-policy pattern (§IV-D): consecutive networks' coverage
    /// overlaps by `overlap`, so the client sees both at once and must
    /// decide when to switch. No dead gaps.
    pub fn overlapping(
        encounter: SimDuration,
        overlap: SimDuration,
        networks: usize,
        total: SimDuration,
    ) -> Self {
        assert!(networks >= 2, "overlap needs at least two networks");
        assert!(
            overlap < encounter,
            "overlap must be shorter than the encounter"
        );
        let mut intervals = Vec::new();
        let stride = encounter.as_micros() - overlap.as_micros();
        let mut t = 0u64;
        let mut net = 0usize;
        while t < total.as_micros() {
            intervals.push(CoverageInterval {
                network: net,
                start_us: t,
                end_us: t + encounter.as_micros(),
                peak_rss_dbm: -55.0,
            });
            t += stride;
            net = (net + 1) % networks;
        }
        CoverageSchedule::new(intervals)
    }

    /// Whether network `net` covers the client at `t`.
    #[cfg(test)]
    pub(crate) fn covered(&self, net: usize, t: SimTime) -> bool {
        self.intervals
            .iter()
            .any(|i| i.network == net && i.covers(t))
    }

    /// RSS for network `net` at `t`, if covered.
    pub(crate) fn rss(&self, net: usize, t: SimTime) -> Option<f64> {
        self.intervals
            .iter()
            .filter(|i| i.network == net)
            .find_map(|i| i.rss_at(t))
    }

    /// Fraction of `[0, total)` covered by at least one network.
    pub fn coverage_fraction(&self, total: SimDuration) -> f64 {
        // Intervals may overlap; sweep the merged union.
        let mut edges: Vec<(u64, i32)> = Vec::new();
        for i in &self.intervals {
            edges.push((i.start_us, 1));
            edges.push((i.end_us.min(total.as_micros()), -1));
        }
        edges.sort_unstable();
        let mut depth = 0;
        let mut covered = 0u64;
        let mut last = 0u64;
        for (t, d) in edges {
            if depth > 0 {
                covered += t.saturating_sub(last);
            }
            last = t;
            depth += d;
        }
        covered as f64 / total.as_micros() as f64
    }

    /// The link up/down transitions implied for each network, as
    /// `(time, network, up)` triples sorted by time — ready to feed into
    /// [`simnet::Simulator::schedule_link_state`].
    pub fn link_transitions(&self) -> Vec<(SimTime, usize, bool)> {
        let mut out = Vec::new();
        // Coverage intervals of the same network could in principle abut;
        // emit raw transitions (simnet ignores no-op duplicates).
        for i in &self.intervals {
            out.push((i.start(), i.network, true));
            out.push((i.end(), i.network, false));
        }
        out.sort_by_key(|(t, n, up)| (*t, *n, *up));
        out
    }
}

impl ToJson for CoverageInterval {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("network".into(), self.network.to_json()),
            ("start_us".into(), self.start_us.to_json()),
            ("end_us".into(), self.end_us.to_json()),
            ("peak_rss_dbm".into(), self.peak_rss_dbm.to_json()),
        ])
    }
}

impl FromJson for CoverageInterval {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CoverageInterval {
            network: usize::from_json(v.field("network")?)?,
            start_us: u64::from_json(v.field("start_us")?)?,
            end_us: u64::from_json(v.field("end_us")?)?,
            peak_rss_dbm: f64::from_json(v.field("peak_rss_dbm")?)?,
        })
    }
}

impl ToJson for CoverageSchedule {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("intervals".into(), self.intervals.to_json()),
            ("networks".into(), self.networks.to_json()),
        ])
    }
}

impl FromJson for CoverageSchedule {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CoverageSchedule {
            intervals: Vec::from_json(v.field("intervals")?)?,
            networks: usize::from_json(v.field("networks")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_shape() {
        let s = CoverageSchedule::alternating(
            SimDuration::from_secs(12),
            SimDuration::from_secs(8),
            2,
            SimDuration::from_secs(60),
        );
        // Encounters at 0, 20, 40 → 3 intervals, alternating nets 0,1,0.
        assert_eq!(s.intervals.len(), 3);
        assert_eq!(
            s.intervals.iter().map(|i| i.network).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );
        assert!(s.covered(0, SimTime::from_micros(5_000_000)));
        assert!(!s.covered(1, SimTime::from_micros(5_000_000)));
        // Gap: nobody covers t=15s.
        assert!(!s.covered(0, SimTime::from_micros(15_000_000)));
        assert!(!s.covered(1, SimTime::from_micros(15_000_000)));
    }

    #[test]
    fn overlapping_has_simultaneous_coverage() {
        let s = CoverageSchedule::overlapping(
            SimDuration::from_secs(12),
            SimDuration::from_secs(3),
            2,
            SimDuration::from_secs(30),
        );
        // Second network starts at 9 s while the first runs to 12 s.
        let t = SimTime::from_micros(10_000_000);
        assert!(s.covered(0, t) && s.covered(1, t));
        // Full coverage, no gaps.
        let frac = s.coverage_fraction(SimDuration::from_secs(30));
        assert!(frac > 0.99, "coverage {frac}");
    }

    #[test]
    fn rss_ramps_up_then_down() {
        let i = CoverageInterval {
            network: 0,
            start_us: 0,
            end_us: 10_000_000,
            peak_rss_dbm: -50.0,
        };
        let early = i.rss_at(SimTime::from_micros(1_000_000)).unwrap();
        let mid = i.rss_at(SimTime::from_micros(5_000_000)).unwrap();
        let late = i.rss_at(SimTime::from_micros(9_000_000)).unwrap();
        assert!(mid > early && mid > late);
        assert!((mid - -50.0).abs() < 1e-9);
        assert!(i.rss_at(SimTime::from_micros(11_000_000)).is_none());
    }

    #[test]
    fn coverage_fraction_alternating() {
        let s = CoverageSchedule::alternating(
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            2,
            SimDuration::from_secs(40),
        );
        // 10 on, 10 off, repeating → 50 %.
        let frac = s.coverage_fraction(SimDuration::from_secs(40));
        assert!((frac - 0.5).abs() < 0.01, "coverage {frac}");
    }

    #[test]
    fn link_transitions_sorted_and_paired() {
        let s = CoverageSchedule::alternating(
            SimDuration::from_secs(4),
            SimDuration::from_secs(8),
            2,
            SimDuration::from_secs(30),
        );
        let tr = s.link_transitions();
        assert_eq!(tr.len(), s.intervals.len() * 2);
        assert!(tr.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn json_roundtrip() {
        let s = CoverageSchedule::alternating(
            SimDuration::from_secs(3),
            SimDuration::from_secs(8),
            2,
            SimDuration::from_secs(20),
        );
        let json = s.to_json().to_string_compact();
        let back = CoverageSchedule::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
