//! Client-side roaming mechanics: association, layer-3 handoff and active
//! session migration.
//!
//! [`Roamer`] is embedded by client applications (the Xftp baseline and
//! SoftStage's Staging Manager alike). It owns the [`NetworkSensor`] and
//! the attachment state machine; the *policy* — when to switch — stays
//! with the embedding app, which is exactly the split the paper's
//! chunk-aware handoff needs (defer the switch to a chunk boundary).

use simnet::{LinkId, SimDuration, SimTime};
use xia_addr::Xid;
use xia_host::HostCtx;
use xia_wire::Beacon;

use crate::sensor::{NetworkKnowledge, NetworkSensor};

/// App-timer key used by the roamer for association completion. Owning
/// apps must forward this key from their `on_timer` to
/// [`Roamer::on_timer`] and avoid using it themselves.
pub const ROAM_ASSOC_TIMER: u64 = 0xF000_0001;

/// Roaming cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoamConfig {
    /// RSS advantage (dB) a candidate needs over the current network
    /// before a handoff is suggested.
    pub hysteresis_db: f64,
    /// Layer-2 (re)association + authentication delay. The paper assumes
    /// this is optimized to near zero by the mobility controller.
    pub assoc_delay: SimDuration,
    /// Active session migration cost paid by live transport connections
    /// after a layer-3 handoff (the paper's "fixed overhead of 1 or 2 s").
    pub migration_delay: SimDuration,
}

impl Default for RoamConfig {
    fn default() -> Self {
        RoamConfig {
            hysteresis_db: 3.0,
            assoc_delay: SimDuration::from_millis(50),
            migration_delay: SimDuration::from_millis(2000),
        }
    }
}

/// Attachment state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoamState {
    /// No usable network.
    Detached,
    /// Association with `target` in progress.
    Associating {
        /// The network being joined.
        target: Xid,
    },
    /// Attached to `nid`.
    Associated {
        /// The current network.
        nid: Xid,
    },
}

/// What the roamer just did (observed by the embedding app).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoamEvent {
    /// Nothing of note.
    None,
    /// Association with the contained network has begun.
    Associating(Xid),
    /// The client is now attached to the contained network.
    Associated(Xid),
    /// The client lost its network.
    Detached,
}

/// The roaming state machine.
#[derive(Debug)]
pub struct Roamer {
    /// Discovered networks (the paper's Network Sensor).
    pub sensor: NetworkSensor,
    config: RoamConfig,
    state: RoamState,
    /// Counts completed associations (for experiments).
    pub handoffs: u64,
    /// Counts active session migrations performed.
    pub migrations: u64,
}

impl Roamer {
    /// Creates a roamer with the given cost model.
    pub fn new(config: RoamConfig) -> Self {
        Roamer {
            sensor: NetworkSensor::default(),
            config,
            state: RoamState::Detached,
            handoffs: 0,
            migrations: 0,
        }
    }

    /// Current attachment state.
    pub fn state(&self) -> RoamState {
        self.state
    }

    /// The cost model in use.
    pub fn config(&self) -> RoamConfig {
        self.config
    }

    /// Absorbs a beacon. If the client is detached, association with the
    /// strongest network begins automatically (both the baseline and
    /// SoftStage join whatever they can when uncovered).
    pub fn on_beacon(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        link: LinkId,
        beacon: &Beacon,
    ) -> RoamEvent {
        self.sensor.on_beacon(ctx.now(), link, beacon);
        if self.state == RoamState::Detached {
            if let Some(best) = self.sensor.best(ctx.now()) {
                let target = best.nid;
                return self.begin_handoff(ctx, target);
            }
        }
        RoamEvent::None
    }

    /// A stronger network than the current one (by the hysteresis margin),
    /// if any — the paper's default handoff trigger. Returns `None` while
    /// detached or associating.
    pub fn candidate(&self, now: SimTime) -> Option<&NetworkKnowledge> {
        let RoamState::Associated { nid } = self.state else {
            return None;
        };
        let current_rss = self.sensor.get(&nid, now).map_or(-95.0, |n| n.rss_dbm);
        self.sensor
            .best(now)
            .filter(|b| b.nid != nid && b.rss_dbm > current_rss + self.config.hysteresis_db)
    }

    /// Starts (re)association with `target`. The data plane keeps its old
    /// attachment until association completes.
    pub fn begin_handoff(&mut self, ctx: &mut HostCtx<'_, '_>, target: Xid) -> RoamEvent {
        if matches!(self.state, RoamState::Associating { .. }) {
            return RoamEvent::None;
        }
        if self.sensor.get(&target, ctx.now()).is_none() {
            return RoamEvent::None;
        }
        self.state = RoamState::Associating { target };
        ctx.set_app_timer(self.config.assoc_delay, ROAM_ASSOC_TIMER as u32);
        RoamEvent::Associating(target)
    }

    /// Forwards an app timer; returns the resulting event. Keys other than
    /// [`ROAM_ASSOC_TIMER`] are ignored.
    pub fn on_timer(&mut self, ctx: &mut HostCtx<'_, '_>, key: u64) -> RoamEvent {
        if key != ROAM_ASSOC_TIMER {
            return RoamEvent::None;
        }
        let RoamState::Associating { target } = self.state else {
            return RoamEvent::None;
        };
        let Some(net) = self.sensor.get(&target, ctx.now()).cloned() else {
            // The target vanished while associating.
            self.state = RoamState::Detached;
            return RoamEvent::Detached;
        };
        self.state = RoamState::Associated { nid: target };
        self.handoffs += 1;
        ctx.set_attachment(Some(net.nid), Some(net.link));
        // Live transport sessions must migrate to the new locator.
        if ctx.active_connection_count() > 0 {
            self.migrations += 1;
            ctx.migrate_connections(self.config.migration_delay);
        }
        RoamEvent::Associated(target)
    }

    /// Handles a link state change: losing the current data link detaches.
    pub fn on_link_event(
        &mut self,
        ctx: &mut HostCtx<'_, '_>,
        link: LinkId,
        up: bool,
    ) -> RoamEvent {
        if up {
            return RoamEvent::None;
        }
        self.sensor.on_link_down(link);
        let lost = match self.state {
            RoamState::Associated { .. } => ctx.primary_link() == Some(link),
            RoamState::Associating { .. } => false,
            RoamState::Detached => false,
        };
        if lost {
            ctx.set_attachment(None, None);
            self.state = RoamState::Detached;
            return RoamEvent::Detached;
        }
        RoamEvent::None
    }
}
