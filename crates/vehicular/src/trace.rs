//! Connectivity traces: recorded or synthesized drive connectivity.
//!
//! The paper's Fig. 7 replays day-long wardriving traces from Beijing
//! (cellular-operator APs, coverage either >80 % or <2 %). Real traces are
//! proprietary, so this module provides (a) a JSON trace format so real
//! traces can be dropped in, and (b) a synthesizer that generates traces
//! with the same qualitative structure: alternating connected bursts and
//! short gaps tuned to a target coverage fraction.

#[cfg(test)]
use simnet::SimTime;
use simnet::{Rng, SimDuration};
use util::json::{FromJson, Json, JsonError, ToJson};

use crate::schedule::{CoverageInterval, CoverageSchedule};

/// One period of a binary connectivity trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePeriod {
    /// Period start, seconds from trace start.
    pub start_s: f64,
    /// Period end, seconds from trace start.
    pub end_s: f64,
    /// Whether the vehicle had usable AP coverage.
    pub connected: bool,
}

/// A binary (connected / disconnected) drive trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConnectivityTrace {
    /// Human-readable origin of the trace.
    pub name: String,
    /// Consecutive, non-overlapping periods.
    pub periods: Vec<TracePeriod>,
}

impl ConnectivityTrace {
    /// Total trace duration.
    pub fn duration(&self) -> SimDuration {
        let end = self.periods.last().map_or(0.0, |p| p.end_s);
        SimDuration::from_secs_f64(end)
    }

    /// Fraction of time connected.
    pub fn coverage_fraction(&self) -> f64 {
        let total: f64 = self.periods.iter().map(|p| p.end_s - p.start_s).sum();
        if total == 0.0 {
            return 0.0;
        }
        let on: f64 = self
            .periods
            .iter()
            .filter(|p| p.connected)
            .map(|p| p.end_s - p.start_s)
            .sum();
        on / total
    }

    /// Whether the vehicle is connected at time `t`.
    #[cfg(test)]
    pub(crate) fn connected_at(&self, t: SimTime) -> bool {
        let s = t.as_secs_f64();
        self.periods
            .iter()
            .any(|p| p.connected && p.start_s <= s && s < p.end_s)
    }

    /// Serializes to the JSON trace format.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).to_string_pretty()
    }

    /// Parses the JSON trace format.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or periods out of order / overlapping.
    pub fn from_json(json: &str) -> Result<Self, TraceError> {
        let value = Json::parse(json).map_err(|_| TraceError::Malformed)?;
        let trace = <ConnectivityTrace as FromJson>::from_json(&value)
            .map_err(|_| TraceError::Malformed)?;
        trace.validate()?;
        Ok(trace)
    }

    /// Builds a trace from per-second connectivity samples (1 Hz logging,
    /// the common wardriving format).
    #[cfg(test)]
    pub(crate) fn from_binary_seconds(name: &str, samples: &[bool]) -> Self {
        let mut periods = Vec::new();
        let mut start = 0usize;
        for i in 1..=samples.len() {
            if i == samples.len() || samples[i] != samples[start] {
                periods.push(TracePeriod {
                    start_s: start as f64,
                    end_s: i as f64,
                    connected: samples[start],
                });
                start = i;
            }
        }
        ConnectivityTrace {
            name: name.to_owned(),
            periods,
        }
    }

    fn validate(&self) -> Result<(), TraceError> {
        let mut last_end = 0.0f64;
        for p in &self.periods {
            if p.end_s <= p.start_s || p.start_s < last_end {
                return Err(TraceError::BadPeriods);
            }
            last_end = p.end_s;
        }
        Ok(())
    }

    /// Converts the binary trace into a [`CoverageSchedule`], assigning
    /// consecutive connected periods to `networks` edge networks
    /// round-robin (the vehicle drives past a sequence of distinct APs).
    pub fn to_schedule(&self, networks: usize) -> CoverageSchedule {
        assert!(networks >= 1);
        let mut intervals = Vec::new();
        let mut net = 0usize;
        for p in self.periods.iter().filter(|p| p.connected) {
            intervals.push(CoverageInterval {
                network: net,
                start_us: (p.start_s * 1e6) as u64,
                end_us: (p.end_s * 1e6) as u64,
                peak_rss_dbm: -55.0,
            });
            net = (net + 1) % networks;
        }
        CoverageSchedule::new(intervals)
    }
}

impl ToJson for TracePeriod {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("start_s".into(), self.start_s.to_json()),
            ("end_s".into(), self.end_s.to_json()),
            ("connected".into(), self.connected.to_json()),
        ])
    }
}

impl FromJson for TracePeriod {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TracePeriod {
            start_s: f64::from_json(v.field("start_s")?)?,
            end_s: f64::from_json(v.field("end_s")?)?,
            connected: bool::from_json(v.field("connected")?)?,
        })
    }
}

impl ToJson for ConnectivityTrace {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("periods".into(), self.periods.to_json()),
        ])
    }
}

impl FromJson for ConnectivityTrace {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ConnectivityTrace {
            name: String::from_json(v.field("name")?)?,
            periods: Vec::from_json(v.field("periods")?)?,
        })
    }
}

/// Errors loading a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The JSON did not parse.
    Malformed,
    /// Periods overlap, run backwards, or are empty.
    BadPeriods,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            TraceError::Malformed => "malformed trace JSON",
            TraceError::BadPeriods => "trace periods overlap or are inverted",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for TraceError {}

/// Parameters of the wardriving-trace synthesizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WardrivingParams {
    /// Target fraction of time connected (Beijing operator APs: > 0.8).
    pub coverage: f64,
    /// Mean connected-burst length, seconds.
    pub mean_burst_s: f64,
    /// Total trace duration, seconds.
    pub total_s: f64,
}

impl Default for WardrivingParams {
    fn default() -> Self {
        WardrivingParams {
            coverage: 0.85,
            mean_burst_s: 40.0,
            total_s: 600.0,
        }
    }
}

/// Synthesizes a wardriving-style connectivity trace: exponentially
/// distributed connected bursts alternating with gaps sized so the trace
/// hits the requested coverage fraction in expectation.
///
/// # Panics
///
/// Panics if `coverage` is not in `(0, 1)` or durations are non-positive.
pub fn synthesize_wardriving(name: &str, params: WardrivingParams, seed: u64) -> ConnectivityTrace {
    assert!(
        params.coverage > 0.0 && params.coverage < 1.0,
        "coverage must be in (0,1)"
    );
    assert!(params.mean_burst_s > 0.0 && params.total_s > 0.0);
    let mut rng = Rng::seed_from_u64(seed);
    let mean_gap = params.mean_burst_s * (1.0 - params.coverage) / params.coverage;
    let mut periods = Vec::new();
    let mut t = 0.0f64;
    let mut connected = true;
    while t < params.total_s {
        let mean = if connected {
            params.mean_burst_s
        } else {
            mean_gap
        };
        // Exponential draw, clamped to keep periods sensible (≥ 1 s).
        let u: f64 = rng.gen_range_f64(1e-6, 1.0);
        let dur = (-u.ln() * mean).max(1.0);
        let end = (t + dur).min(params.total_s);
        periods.push(TracePeriod {
            start_s: t,
            end_s: end,
            connected,
        });
        t = end;
        connected = !connected;
    }
    ConnectivityTrace {
        name: name.to_owned(),
        periods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_seconds_roundtrip() {
        let samples = [true, true, false, true, true, true];
        let t = ConnectivityTrace::from_binary_seconds("t", &samples);
        assert_eq!(t.periods.len(), 3);
        assert!(t.connected_at(SimTime::from_micros(500_000)));
        assert!(!t.connected_at(SimTime::from_micros(2_500_000)));
        assert!((t.coverage_fraction() - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let t = ConnectivityTrace::from_binary_seconds("x", &[true, false, true]);
        let json = t.to_json();
        assert_eq!(ConnectivityTrace::from_json(&json).unwrap(), t);
        // Overlapping periods rejected.
        let bad = r#"{"name":"b","periods":[
            {"start_s":0.0,"end_s":5.0,"connected":true},
            {"start_s":3.0,"end_s":6.0,"connected":false}]}"#;
        assert_eq!(
            ConnectivityTrace::from_json(bad),
            Err(TraceError::BadPeriods)
        );
        assert_eq!(
            ConnectivityTrace::from_json("not json"),
            Err(TraceError::Malformed)
        );
    }

    #[test]
    fn synthesizer_hits_coverage_roughly() {
        let params = WardrivingParams {
            coverage: 0.85,
            mean_burst_s: 40.0,
            total_s: 3600.0,
        };
        let t = synthesize_wardriving("beijing-like", params, 7);
        let cov = t.coverage_fraction();
        assert!((0.7..=0.95).contains(&cov), "coverage {cov}");
        // Deterministic per seed.
        assert_eq!(synthesize_wardriving("beijing-like", params, 7), t);
        assert_ne!(synthesize_wardriving("beijing-like", params, 8), t);
    }

    #[test]
    fn to_schedule_round_robins_networks() {
        let samples = [true, false, true, false, true];
        let t = ConnectivityTrace::from_binary_seconds("rr", &samples);
        let s = t.to_schedule(2);
        assert_eq!(s.intervals.len(), 3);
        assert_eq!(
            s.intervals.iter().map(|i| i.network).collect::<Vec<_>>(),
            vec![0, 1, 0]
        );
    }

    #[test]
    fn duration_and_empty_trace() {
        let t = ConnectivityTrace::default();
        assert_eq!(t.duration(), SimDuration::ZERO);
        assert_eq!(t.coverage_fraction(), 0.0);
    }
}
