//! Fault injection demo: a vehicular download riding out link flaps, a
//! burst-loss window, an edge-router crash/restart and a cache wipe —
//! then the same drive with no VNF anywhere, showing the explicit
//! origin-fallback state.
//!
//! ```bash
//! cargo run --release --example fault_injection
//! ```

use softstage_suite::experiments::{build, ExperimentParams, MB};
use softstage_suite::simnet::fault::FaultPlan;
use softstage_suite::simnet::{SimDuration, SimTime};
use softstage_suite::softstage::SoftStageConfig;

fn main() {
    let p = ExperimentParams {
        file_size: 8 * MB,
        chunk_size: MB,
        seed: 7,
        ..ExperimentParams::default()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
    let deadline = SimTime::ZERO + SimDuration::from_secs(2000);

    // Clean reference run.
    let clean = build(&p, &schedule, SoftStageConfig::default()).run(deadline);
    let clean_t = clean.completion.expect("clean run finishes");
    println!(
        "clean:   done in {:.2} s, {} staged / {} origin, content ok: {}",
        (clean_t - SimTime::ZERO).as_secs_f64(),
        clean.from_staged,
        clean.from_origin,
        clean.content_ok,
    );

    // The same download under a pile of faults.
    let mut tb = build(&p, &schedule, SoftStageConfig::default());
    let mut plan = FaultPlan::new();
    for (i, &link) in tb.radio_links.clone().iter().enumerate() {
        plan.random_flaps(
            link,
            3,
            SimTime::ZERO + SimDuration::from_millis(500),
            SimTime::ZERO + SimDuration::from_secs(5),
            SimDuration::from_millis(1200),
            p.seed ^ (i as u64 + 1),
        );
        plan.burst_loss(
            link,
            SimTime::ZERO + SimDuration::from_secs(6),
            SimDuration::from_secs(2),
            0.9,
        );
    }
    for &edge in &tb.edges.clone() {
        plan.crash(
            edge,
            SimTime::ZERO + SimDuration::from_secs(2),
            Some(SimDuration::from_secs(5)),
        );
        plan.cache_wipe(edge, SimTime::ZERO + SimDuration::from_secs(9));
    }
    println!("faults:  {} scheduled", plan.faults().len());
    plan.apply(&mut tb.sim);
    let faulted = tb.run(deadline);
    let faulted_t = faulted.completion.expect("faulted run still finishes");
    let stats = tb.client_app().stats();
    println!(
        "faulted: done in {:.2} s, {} staged / {} origin, content ok: {}",
        (faulted_t - SimTime::ZERO).as_secs_f64(),
        faulted.from_staged,
        faulted.from_origin,
        faulted.content_ok,
    );
    println!(
        "         stage retries {}, fetch retries {}, fallback refetches {}, mode {:?}",
        stats.stage_retries,
        stats.fetch_retries,
        stats.fallback_refetches,
        tb.client_app().mode(),
    );

    // No VNF deployed anywhere: the explicit origin-fallback path.
    let p2 = ExperimentParams {
        vnf_deployed: false,
        ..p
    };
    let schedule2 = p2.alternating_schedule(SimDuration::from_secs(2000));
    let mut tb2 = build(&p2, &schedule2, SoftStageConfig::default());
    let no_vnf = tb2.run(deadline);
    let app = tb2.client_app();
    println!(
        "no VNF:  done in {:.2} s, all {} chunks from origin, mode {:?}, fallbacks recorded {}",
        (no_vnf.completion.expect("completes") - SimTime::ZERO).as_secs_f64(),
        no_vnf.from_origin,
        app.mode(),
        app.stats().origin_fallbacks,
    );
}
