//! A vehicular content download on the paper's testbed: SoftStage vs the
//! Xftp baseline under the Table III default parameters.
//!
//! ```text
//! cargo run --release --example vehicular_download
//! ```

use simnet::{SimDuration, SimTime};
use softstage_suite::experiments::{build, ExperimentParams};
use softstage_suite::softstage::SoftStageConfig;

fn main() {
    let params = ExperimentParams::default();
    let schedule = params.alternating_schedule(SimDuration::from_secs(4000));
    println!(
        "64 MB file, {} chunks of {} MB; encounters {}s / gaps {}s; \
         wireless loss {:.0}%; Internet {} Mbps @ {} RTT",
        params.chunk_count(),
        params.chunk_size / (1024 * 1024),
        params.encounter.as_secs_f64(),
        params.disconnection.as_secs_f64(),
        params.wireless_loss * 100.0,
        params.internet_bw_bps / 1_000_000,
        params.internet_rtt,
    );

    let deadline = SimTime::ZERO + SimDuration::from_secs(4000);
    let soft = build(&params, &schedule, SoftStageConfig::default()).run(deadline);
    let base = build(&params, &schedule, SoftStageConfig::baseline()).run(deadline);

    let s = soft.completion.expect("softstage finished").as_secs_f64();
    let b = base.completion.expect("xftp finished").as_secs_f64();
    println!("\n              download   staged  origin  handoffs  migrations");
    println!(
        "softstage   {s:>8.1} s   {:>6}  {:>6}  {:>8}  {:>10}",
        soft.from_staged, soft.from_origin, soft.handoffs, soft.migrations
    );
    println!(
        "xftp        {b:>8.1} s   {:>6}  {:>6}  {:>8}  {:>10}",
        base.from_staged, base.from_origin, base.handoffs, base.migrations
    );
    println!(
        "\ngain: {:.2}x (paper reports 1.77x at these defaults)",
        b / s
    );
    assert!(soft.content_ok && base.content_ok, "integrity verified");
}
