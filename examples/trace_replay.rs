//! Replays a wardriving connectivity trace (Fig. 7): how many content
//! objects can each client pull down during the drive?
//!
//! With no argument a Beijing-like trace is synthesized; pass a path to a
//! JSON trace file (see `vehicular::ConnectivityTrace`) to replay a real
//! drive.
//!
//! ```text
//! cargo run --release --example trace_replay [trace.json]
//! ```

use softstage_suite::experiments::fig7;
use softstage_suite::vehicular::{synthesize_wardriving, ConnectivityTrace, WardrivingParams};

fn main() {
    let trace = match std::env::args().nth(1) {
        Some(path) => {
            let json = std::fs::read_to_string(&path).expect("readable trace file");
            ConnectivityTrace::from_json(&json).expect("valid trace JSON")
        }
        None => synthesize_wardriving(
            "beijing-like",
            WardrivingParams {
                coverage: 0.85,
                mean_burst_s: 30.0,
                total_s: 300.0,
            },
            7,
        ),
    };
    println!(
        "trace '{}': {:.0} s, {:.0}% coverage, {} periods",
        trace.name,
        trace.duration().as_secs_f64(),
        trace.coverage_fraction() * 100.0,
        trace.periods.len()
    );

    let result = fig7::replay(&trace, 7);
    println!(
        "xftp downloaded {} chunks; softstage downloaded {} chunks ({:.2}x)",
        result.xftp_chunks,
        result.softstage_chunks,
        result.factor()
    );
    println!("(the paper reports ~2x on its Beijing wardriving traces)");
}
