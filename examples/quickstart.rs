//! Quickstart: publish content on an origin server, fetch it over a
//! simulated link with XIA chunk transfers, verify integrity.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use simnet::{LinkConfig, SimDuration, Simulator};
use softstage_suite::apps::{build_origin, SeqFetcher};
use softstage_suite::xia_addr::{sha1, Principal, Xid};
use softstage_suite::xia_host::{EndHost, Host, HostConfig};
use softstage_suite::xia_wire::XiaPacket;
use util::bytes::Bytes;

fn main() {
    // 1. Identities: XIDs are self-certifying 160-bit names.
    let server_hid = Xid::new_random(Principal::Hid, 1);
    let server_nid = Xid::new_random(Principal::Nid, 1);
    let client_hid = Xid::new_random(Principal::Hid, 2);

    // 2. An origin server publishing 8 MB of content as 1 MB chunks.
    let content = Bytes::from(
        (0..8 * 1024 * 1024)
            .map(|i| (i % 251) as u8)
            .collect::<Vec<u8>>(),
    );
    let digest = sha1::sha1(&content);
    let (server_host, manifest, dags) = build_origin(
        server_hid,
        server_nid,
        &content,
        1024 * 1024,
        Default::default(),
    );
    println!(
        "published {} chunks, e.g. {}",
        manifest.len(),
        dags[0].1 // the first chunk's `CID | NID : HID` address
    );

    // 3. A client that fetches every chunk sequentially (XChunkP-style).
    let mut client_host = Host::new(HostConfig::new(client_hid));
    client_host.add_app(Box::new(SeqFetcher::new(
        dags.into_iter().map(|(_, dag)| dag).collect(),
    )));

    // 4. Wire them together over a 100 Mbps link and run to completion.
    let mut sim: Simulator<XiaPacket> = Simulator::new(7);
    let server = sim.add_node(Box::new(EndHost::new(server_host)));
    let client = sim.add_node(Box::new(EndHost::new(client_host)));
    let link = sim.add_link(
        client,
        server,
        LinkConfig::wired(100_000_000, SimDuration::from_millis(5)),
    );
    sim.node_mut::<EndHost>(server)
        .unwrap()
        .host_mut()
        .set_attachment(Some(server_nid), Some(link));
    sim.node_mut::<EndHost>(client)
        .unwrap()
        .host_mut()
        .set_attachment(Some(server_nid), Some(link));
    sim.run();

    // 5. Inspect the download.
    let fetcher = sim
        .node::<EndHost>(client)
        .unwrap()
        .host()
        .app::<SeqFetcher>(0)
        .unwrap();
    let finished = fetcher.finished_at().expect("download completed");
    println!(
        "downloaded {} bytes in {:.3} s ({:.1} Mbps), integrity {}",
        fetcher.bytes,
        finished.as_secs_f64(),
        fetcher.bytes as f64 * 8.0 / finished.as_secs_f64() / 1e6,
        if fetcher.content_digest() == digest {
            "verified"
        } else {
            "FAILED"
        }
    );
    for (t, cid, latency) in &fetcher.completions {
        println!("  {} at {:>8} (took {})", cid.short(), t, latency);
    }
}
