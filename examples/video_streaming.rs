//! Video-on-demand over the vehicular testbed (the paper's §V extension):
//! compares playback quality — startup and rebuffering — with and without
//! SoftStage.
//!
//! Chunks are 2 MB ≈ 2 s of 720p video (the paper's YouTube-derived
//! sizing), so the player consumes one chunk per two seconds after a
//! 3-chunk startup buffer.
//!
//! ```text
//! cargo run --release --example video_streaming
//! ```

use simnet::{SimDuration, SimTime};
use softstage_suite::apps::PlaybackModel;
use softstage_suite::experiments::{build, ExperimentParams, MB};
use softstage_suite::softstage::SoftStageConfig;

fn main() {
    let params = ExperimentParams {
        file_size: 64 * MB, // a 64 s clip
        chunk_size: 2 * MB,
        ..ExperimentParams::default()
    };
    let schedule = params.alternating_schedule(SimDuration::from_secs(4000));
    let deadline = SimTime::ZERO + SimDuration::from_secs(4000);
    let model = PlaybackModel {
        startup_chunks: 3,
        chunk_duration: SimDuration::from_secs(2),
    };

    println!(
        "streaming a {}-chunk 720p clip over the vehicular testbed\n",
        params.chunk_count()
    );
    for (name, config) in [
        ("softstage", SoftStageConfig::default()),
        ("xftp", SoftStageConfig::baseline()),
    ] {
        let result = build(&params, &schedule, config).run(deadline);
        assert!(result.content_ok, "{name} must finish and verify");
        let completions: Vec<SimTime> = result
            .chunk_completions
            .iter()
            .map(|(t, _, _)| *t)
            .collect();
        let report = model.analyze(&completions);
        println!(
            "{name:>10}: start {:>6.2} s, {} stalls, {:>6.2} s stalled, ends {:>7.2} s",
            report.playback_start.as_secs_f64(),
            report.stalls,
            report.stall_time.as_secs_f64(),
            report.playback_end.as_secs_f64(),
        );
    }
    println!("\nstaging keeps the buffer ahead of playback through coverage gaps");
}
