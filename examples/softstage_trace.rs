//! softstage-trace: run a seeded SoftStage download with the flight
//! recorder attached, audit the trace against the invariant oracle, and
//! dump the trace as JSON lines.
//!
//! ```text
//! cargo run --release --example softstage_trace [seed] [out.jsonl]
//! ```
//!
//! With no output path the per-event-type summary and the oracle verdict
//! print to stdout and the JSON lines are suppressed; pass a path (or `-`
//! for stdout) to get the full trace.

use std::collections::BTreeMap;

use softstage_suite::experiments::{build, ExperimentParams, MB};
use softstage_suite::simnet::{SimDuration, SimTime};
use softstage_suite::softstage::SoftStageConfig;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(42);
    let out = std::env::args().nth(2);

    let params = ExperimentParams {
        file_size: 6 * MB,
        chunk_size: MB,
        seed,
        ..ExperimentParams::default()
    };
    let schedule = params.alternating_schedule(SimDuration::from_secs(2000));
    let mut tb = build(&params, &schedule, SoftStageConfig::default());
    tb.enable_trace(1 << 20);
    let result = tb.run(SimTime::ZERO + SimDuration::from_secs(2000));

    let sink = tb.sim.trace().expect("recorder attached");
    let mut by_event: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in sink.records() {
        *by_event.entry(r.event.name()).or_default() += 1;
    }

    println!(
        "seed {seed}: {} chunks in {}, {} staged / {} origin, content {}",
        result.chunks_fetched,
        result
            .completion
            .map_or("DNF".to_string(), |t| format!("{:.2} s", t.as_secs_f64())),
        result.from_staged,
        result.from_origin,
        if result.content_ok {
            "verified"
        } else {
            "FAILED"
        },
    );
    println!(
        "trace: {} records ({} dropped by the ring)",
        sink.len(),
        sink.dropped()
    );
    for (name, count) in &by_event {
        println!("  {name:<16} {count}");
    }

    let violations = tb.audit_trace();
    if violations.is_empty() {
        println!("oracle: clean");
    } else {
        println!("oracle: {} violation(s)", violations.len());
        for v in &violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }

    match out.as_deref() {
        None => {}
        Some("-") => print!("{}", tb.trace_jsonl()),
        Some(path) => {
            std::fs::write(path, tb.trace_jsonl()).expect("writable output path");
            println!("wrote {path}");
        }
    }
}
