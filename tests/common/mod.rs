//! Helpers shared across the workspace integration suites. Each test
//! binary compiles its own copy, so not every binary uses every helper.
#![allow(dead_code)]

use std::fmt::Write as _;

use softstage_suite::experiments::{build, ExperimentParams, RunResult, Testbed, MB};
use softstage_suite::simnet::{SimDuration, SimTime};
use softstage_suite::softstage::SoftStageConfig;
use softstage_suite::xia_addr::sha1;

/// Flight-recorder capacity ample for every scenario in these suites
/// (the oracle's counting rules need the untruncated trace).
pub const TRACE_CAPACITY: usize = 1 << 20;

/// Generous deadline for the small downloads used across the suites.
pub fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(2000)
}

/// The small 6-chunk download shared by the chaos and determinism suites.
pub fn small(seed: u64) -> ExperimentParams {
    ExperimentParams {
        file_size: 6 * MB,
        chunk_size: MB,
        seed,
        ..ExperimentParams::default()
    }
}

/// A testbed over `params` with the default (staging-on, chunk-aware)
/// client and the alternating coverage schedule.
pub fn testbed(params: &ExperimentParams) -> Testbed {
    let schedule = params.alternating_schedule(SimDuration::from_secs(2000));
    build(params, &schedule, SoftStageConfig::default())
}

/// Asserts the attached flight recorder lost nothing and that the
/// recorded trace satisfies every oracle invariant.
pub fn assert_trace_clean(tb: &Testbed, scenario: &str) {
    assert_eq!(
        tb.trace_dropped(),
        0,
        "{scenario}: trace ring overflowed; raise the capacity"
    );
    let violations = tb.audit_trace();
    assert!(
        violations.is_empty(),
        "{scenario}: trace invariant violations: {violations:#?}"
    );
}

/// Folds every observable statistic — the run result, client stats, the
/// content hash, simulator counters and (when the flight recorder is
/// attached) the full event sequence — into one digest.
pub fn digest_of(tb: &Testbed, label: &str, result: &RunResult) -> [u8; 20] {
    let mut s = String::new();
    let _ = write!(s, "{label} {result:?}");
    let app = tb.client_app();
    let _ = write!(s, " stats={:?} mode={:?}", app.stats(), app.mode());
    let _ = write!(s, " digest={:02x?}", app.content_digest());
    let _ = write!(s, " sim={:?}", tb.sim.stats());
    let _ = write!(s, " trace={}", sha1::to_hex(&trace_digest(tb)));
    sha1::sha1(s.as_bytes())
}

/// SHA-1 over the recorded trace's JSON-lines export (the all-zero digest
/// of the empty string when tracing is off).
pub fn trace_digest(tb: &Testbed) -> [u8; 20] {
    sha1::sha1(tb.trace_jsonl().as_bytes())
}
