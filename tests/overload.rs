//! Overload suite: a saturating staging-request storm against pinched VNF
//! queues. The invariants under test are the overload-protection design's:
//!
//! - the VNF's staging queue never exceeds its configured cap (bounded
//!   backpressure, not silent queueing),
//! - every shed request is *reported* — client-counted rejects match the
//!   VNF's shed counter, and nothing disappears: the download completes
//!   with a byte-correct content hash,
//! - the whole degraded run is deterministic: same seed, byte-identical
//!   digest across two runs,
//! - a long edge outage drives the client's circuit breaker through
//!   open/probe cycles without stalling the download.
//!
//! Every run finishes with a trace-oracle audit, so the new overload
//! events (`StageReject`, `StageTimeout`, `BreakerTransition`) must also
//! satisfy their ordering invariants (no stage request while the breaker
//! is open; every open preceded by a failure signal).

mod common;

use softstage_suite::experiments::{build_with_vnf, ExperimentParams, RunResult, Testbed, MB};
use softstage_suite::simnet::fault::FaultPlan;
use softstage_suite::simnet::{BreakerState, SimDuration, SimTime};
use softstage_suite::softstage::{
    Breaker, BreakerConfig, CoordinatorConfig, SoftStageConfig, VnfConfig,
};

use common::{deadline, TRACE_CAPACITY};

const SEEDS: [u64; 3] = [7, 101, 9001];

/// The storm: a deep staging window (initial depth 16) over a 12-chunk
/// download, so the first request batch alone overruns a pinched queue.
fn storm_params(seed: u64) -> ExperimentParams {
    ExperimentParams {
        file_size: 12 * MB,
        chunk_size: MB,
        seed,
        ..ExperimentParams::default()
    }
}

fn storm_client() -> SoftStageConfig {
    SoftStageConfig {
        coordinator: CoordinatorConfig {
            initial_depth: 16,
            ..CoordinatorConfig::default()
        },
        ..SoftStageConfig::default()
    }
}

/// Builds the storm testbed with every VNF capped at `max_depth` jobs.
fn storm_testbed(seed: u64, max_depth: usize) -> Testbed {
    let params = storm_params(seed);
    let schedule = params.alternating_schedule(SimDuration::from_secs(2000));
    let mut tb = build_with_vnf(&params, &schedule, storm_client(), |_| VnfConfig {
        max_depth,
        retry_after: SimDuration::from_millis(750),
        ..VnfConfig::default()
    });
    tb.enable_trace(TRACE_CAPACITY);
    tb
}

fn run_storm(seed: u64, max_depth: usize) -> (Testbed, RunResult) {
    let mut tb = storm_testbed(seed, max_depth);
    let result = tb.run(deadline());
    (tb, result)
}

#[test]
fn storm_stays_within_queue_cap_and_loses_nothing() {
    for seed in SEEDS {
        let cap = 2usize;
        let (tb, result) = run_storm(seed, cap);
        assert!(
            result.content_ok,
            "storm run must complete intact (seed {seed}): {result:?}"
        );
        common::assert_trace_clean(&tb, &format!("storm seed {seed}"));

        let vnfs = tb.vnf_stats();
        assert!(!vnfs.is_empty(), "VNFs deployed");
        let mut total_rejected = 0;
        for (i, v) in vnfs.iter().enumerate() {
            assert!(
                v.peak_depth <= cap as u64,
                "VNF {i} queue must stay within its cap (seed {seed}): {v:?}"
            );
            total_rejected += v.rejected;
        }
        // The deep window versus a depth-2 queue must actually shed work…
        assert!(
            total_rejected > 0,
            "a 16-deep storm against cap 2 must reject (seed {seed}): {vnfs:?}"
        );
        // …and every shed is reported: no lost-but-unreported staging.
        // (Replies can still be in flight at completion, so the client may
        // have seen fewer — never more — rejects than the VNFs sent.)
        assert!(
            result.stage_rejects <= total_rejected,
            "client cannot see more rejects than were sent (seed {seed}): \
             client {} vs vnf {total_rejected}",
            result.stage_rejects
        );
        assert!(
            result.stage_rejects > 0,
            "the client must observe the backpressure (seed {seed}): {result:?}"
        );
        // Backpressure sheds load, it does not strand it: once the
        // download completes every staging queue has drained.
        assert!(
            tb.vnf_queue_depths().iter().all(|&d| d == 0),
            "staging queues must drain by completion (seed {seed}): {:?}",
            tb.vnf_queue_depths()
        );
    }
}

#[test]
fn storm_runs_are_byte_identical_per_seed() {
    for seed in SEEDS {
        let (tb_a, res_a) = run_storm(seed, 2);
        let (tb_b, res_b) = run_storm(seed, 2);
        assert!(res_a.content_ok && res_b.content_ok, "seed {seed}");
        let a = common::digest_of(&tb_a, "storm", &res_a);
        let b = common::digest_of(&tb_b, "storm", &res_b);
        assert_eq!(
            a, b,
            "same-seed storm runs must be byte-identical (seed {seed})"
        );
    }
}

#[test]
fn unpinched_vnf_sees_no_backpressure() {
    // The generous default bounds must keep existing workloads reject-free:
    // overload protection is inert until something is actually overloaded.
    for seed in SEEDS {
        let (tb, result) = run_storm(seed, 64);
        assert!(result.content_ok, "seed {seed}: {result:?}");
        common::assert_trace_clean(&tb, &format!("unpinched seed {seed}"));
        assert_eq!(
            result.stage_rejects, 0,
            "no rejects under generous bounds (seed {seed}): {result:?}"
        );
        assert_eq!(
            result.breaker_opens, 0,
            "breaker must stay closed on a healthy edge (seed {seed}): {result:?}"
        );
        assert_eq!(tb.client_app().breaker_state(), BreakerState::Closed);
        assert!(
            result.mode_dwell_us.0 > 0,
            "the staging path must dwell Active (seed {seed}): {result:?}"
        );
        // A healthy run feeds both latency estimators (they drive the
        // staged-ahead depth and the RICH-style usefulness deadlines).
        let coord = tb.client_app().coordinator();
        assert!(
            coord.fetch_estimate().is_some() && coord.stage_estimate().is_some(),
            "healthy staging must feed the latency estimators (seed {seed})"
        );
    }
}

#[test]
fn breaker_walks_the_full_state_machine() {
    // The breaker is a pure state machine on the sim clock. Instead of a
    // hand-enumerated walk, `ssmc::choice` drives *every* event sequence
    // of bounded depth — failures, successes, early and late polls,
    // probe sends, probe aborts (a probe lost to a coverage gap must free
    // the slot without a verdict), and edge-switch resets — and compares
    // the real breaker against an independently-coded spec of the
    // documented contract at every step.
    use std::cell::Cell;

    #[derive(Clone, Copy, Debug)]
    enum Ev {
        Failure,
        Success,
        Poll,
        PollLate,
        NoteProbeSent,
        AbortProbe,
        Reset,
    }
    const EVENTS: [Ev; 7] = [
        Ev::Failure,
        Ev::Success,
        Ev::Poll,
        Ev::PollLate,
        Ev::NoteProbeSent,
        Ev::AbortProbe,
        Ev::Reset,
    ];
    const DEPTH: usize = 5;
    const THRESHOLD: u32 = 2;

    // The spec: a line-by-line transcription of the breaker's *documented*
    // contract (module docs + method docs), written without looking at
    // the implementation's structure.
    struct Spec {
        state: BreakerState,
        consecutive: u32,
        opened_at: SimTime,
        probe_inflight: bool,
    }
    impl Spec {
        fn can_request(&self) -> bool {
            match self.state {
                BreakerState::Closed => true,
                BreakerState::Open => false,
                BreakerState::HalfOpen => !self.probe_inflight,
            }
        }
        fn goto(&mut self, next: BreakerState) -> Option<BreakerState> {
            if self.state == next {
                return None;
            }
            self.state = next;
            Some(next)
        }
    }

    // Coverage accumulated across all explored sequences: states seen,
    // transitions taken, and the aborted-probe-frees-the-slot path.
    let seen = Cell::new(0u32);
    let mark = |bit: u32| seen.set(seen.get() | 1 << bit);
    const COVERAGE_BITS: u32 = 9;

    let mut cfg = ssmc::Config::new("breaker-walk");
    cfg.check_results = false; // `choice` injects data nondeterminism
    let open_for = SimDuration::from_secs(3);

    let stats = ssmc::explore(cfg, || {
        let mut b = Breaker::new(BreakerConfig {
            threshold: THRESHOLD,
            open_for,
        });
        let mut spec = Spec {
            state: BreakerState::Closed,
            consecutive: 0,
            opened_at: SimTime::ZERO,
            probe_inflight: false,
        };
        let mut now = SimTime::ZERO;
        for step in 0..DEPTH {
            now = now + SimDuration::from_secs(1);
            let ev = EVENTS[ssmc::choice(EVENTS.len())];
            let before = spec.state;
            let (got, want) = match ev {
                Ev::Failure => (
                    b.on_failure(now),
                    match spec.state {
                        BreakerState::HalfOpen => {
                            spec.probe_inflight = false;
                            spec.opened_at = now;
                            spec.goto(BreakerState::Open)
                        }
                        BreakerState::Closed => {
                            spec.consecutive = spec.consecutive.saturating_add(1);
                            if spec.consecutive >= THRESHOLD {
                                spec.opened_at = now;
                                spec.goto(BreakerState::Open)
                            } else {
                                None
                            }
                        }
                        BreakerState::Open => None,
                    },
                ),
                Ev::Success => (b.on_success(), {
                    spec.consecutive = 0;
                    spec.probe_inflight = false;
                    spec.goto(BreakerState::Closed)
                }),
                Ev::Poll | Ev::PollLate => {
                    if matches!(ev, Ev::PollLate) {
                        // Jump the clock to the end of the open window
                        // (monotonically — never backwards).
                        let end = spec.opened_at + open_for;
                        if end > now {
                            now = end;
                        }
                    }
                    (
                        b.poll(now),
                        if spec.state == BreakerState::Open && now >= spec.opened_at + open_for {
                            spec.probe_inflight = false;
                            spec.goto(BreakerState::HalfOpen)
                        } else {
                            None
                        },
                    )
                }
                Ev::NoteProbeSent => (
                    {
                        b.note_probe_sent();
                        None
                    },
                    {
                        if spec.state == BreakerState::HalfOpen {
                            spec.probe_inflight = true;
                        }
                        None
                    },
                ),
                Ev::AbortProbe => {
                    if spec.state == BreakerState::HalfOpen && spec.probe_inflight {
                        mark(8); // an in-flight probe was genuinely aborted
                    }
                    b.abort_probe();
                    spec.probe_inflight = false;
                    (None, None)
                }
                Ev::Reset => (b.reset(), {
                    spec.consecutive = 0;
                    spec.probe_inflight = false;
                    spec.goto(BreakerState::Closed)
                }),
            };
            assert_eq!(got, want, "step {step}: {ev:?} transition diverged");
            assert_eq!(b.state(), spec.state, "step {step}: {ev:?} state");
            assert_eq!(
                b.can_request(),
                spec.can_request(),
                "step {step}: {ev:?} can_request (state {:?}, probe {})",
                spec.state,
                spec.probe_inflight
            );
            assert_eq!(
                b.is_probe(),
                spec.state == BreakerState::HalfOpen,
                "step {step}: {ev:?} is_probe"
            );
            match spec.state {
                BreakerState::Closed => mark(0),
                BreakerState::Open => mark(1),
                BreakerState::HalfOpen => mark(2),
            }
            match (before, spec.state) {
                (BreakerState::Closed, BreakerState::Open) => mark(3),
                (BreakerState::Open, BreakerState::HalfOpen) => mark(4),
                (BreakerState::HalfOpen, BreakerState::Open) => mark(5),
                (BreakerState::HalfOpen, BreakerState::Closed) => mark(6),
                (BreakerState::Open, BreakerState::Closed) => mark(7),
                _ => {}
            }
        }
    })
    .unwrap_or_else(|f| panic!("breaker diverged from its spec: {f}"));

    // Every depth-5 event sequence is one explored schedule.
    assert_eq!(
        stats.schedules,
        (EVENTS.len() as u64).pow(DEPTH as u32),
        "the walk must be exhaustive: {stats:?}"
    );
    assert!(!stats.capped, "the walk must not hit the schedule cap");
    assert_eq!(
        seen.get(),
        (1 << COVERAGE_BITS) - 1,
        "every state, every transition and the probe-abort path must be \
         covered, got bitmap {:#b}",
        seen.get()
    );
}

#[test]
fn slow_edge_trips_breaker_and_download_survives() {
    // A `SlowEdge` fault stalls every VNF's replies for 10 s (each held
    // 30 s, far past the staging back-off) while the radio stays up. The
    // onset at 0.5 s lands before the storm's first origin fetches
    // complete, so every staging ack is held: the pending requests all
    // time out while associated, the breaker must open — health-aware
    // failover to origin fetches — and the download must keep moving.
    // When the fault lifts, the held replies flush, the breaker heals
    // shut, and staging resumes. The download is twice the storm size so
    // the run outlives the fault window with room for the recovery.
    for seed in SEEDS {
        let params = ExperimentParams {
            file_size: 24 * MB,
            chunk_size: MB,
            seed,
            ..ExperimentParams::default()
        };
        let schedule = params.alternating_schedule(SimDuration::from_secs(2000));
        let mut tb = build_with_vnf(&params, &schedule, storm_client(), |_| VnfConfig::default());
        tb.enable_trace(TRACE_CAPACITY);
        let mut plan = FaultPlan::new();
        for &edge in &tb.edges.clone() {
            plan.slow_edge(
                edge,
                SimTime::ZERO + SimDuration::from_millis(500),
                SimDuration::from_secs(10),
                SimDuration::from_secs(30),
            );
        }
        plan.apply(&mut tb.sim);
        let result = tb.run(deadline());
        assert!(
            result.content_ok,
            "slow-edge run must complete intact (seed {seed}): {result:?}"
        );
        common::assert_trace_clean(&tb, &format!("slow-edge seed {seed}"));
        assert!(
            result.breaker_opens > 0,
            "repeated staging timeouts must trip the breaker (seed {seed}): {result:?}"
        );
        let app = tb.client_app();
        assert!(
            app.stats().stage_timeouts > 0,
            "timeouts are the breaker's evidence (seed {seed}): {:?}",
            app.stats()
        );
        // The fault lifts 10.5 s in, long before the download can finish
        // over the origin path; the flushed replies and resumed staging
        // must heal the breaker shut by completion.
        assert_eq!(
            app.breaker_state(),
            BreakerState::Closed,
            "breaker must heal once the edge recovers (seed {seed})"
        );
    }
}
