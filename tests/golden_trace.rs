//! Golden-trace regression: the flight recorder's JSON-lines export is a
//! pure function of `(topology, params, seed)` — two runs of the same
//! seeded scenario must serialize byte-identical traces, every recorded
//! trace must satisfy the invariant oracle, and a deliberately corrupted
//! trace must be rejected with the specific invariant it breaks.

mod common;

use softstage_suite::experiments::Testbed;
use softstage_suite::simnet::trace::parse_jsonl;
use softstage_suite::simnet::{
    DropReason, FetchSource, InvariantKind, Scheduler, SimDuration, TraceEvent, TraceOracle,
    TraceRecord,
};
use softstage_suite::softstage::SoftStageConfig;
use softstage_suite::vehicular::CoverageSchedule;
use softstage_suite::xia_addr::sha1;

use common::{deadline, small, TRACE_CAPACITY};

/// One seeded fig5-style staging run (alternating coverage) with the
/// recorder attached.
fn staging_run(seed: u64) -> Testbed {
    staging_run_with(seed, Scheduler::Wheel)
}

/// The same run on an explicit event-queue backend.
fn staging_run_with(seed: u64, scheduler: Scheduler) -> Testbed {
    let p = small(seed);
    let mut tb = common::testbed(&p);
    tb.sim.set_scheduler(scheduler);
    tb.enable_trace(TRACE_CAPACITY);
    let result = tb.run(deadline());
    assert!(result.content_ok, "staging run must complete: {result:?}");
    tb
}

/// One seeded handoff run: overlapping coverage, so the chunk-aware
/// policy defers switches to chunk boundaries. The encounters are
/// shortened (and the file enlarged) so the download is still in flight
/// when the RSS crossover inside an overlap makes the next network the
/// stronger candidate — otherwise the run ends before any real switch
/// decision.
fn handoff_run(seed: u64) -> Testbed {
    let mut p = small(seed);
    p.file_size = 16 * softstage_suite::experiments::MB;
    p.encounter = SimDuration::from_secs(5);
    let schedule = CoverageSchedule::overlapping(
        p.encounter,
        SimDuration::from_secs(2),
        p.edge_networks.max(2),
        SimDuration::from_secs(2000),
    );
    let mut tb = softstage_suite::experiments::build(&p, &schedule, SoftStageConfig::default());
    tb.enable_trace(TRACE_CAPACITY);
    let result = tb.run(deadline());
    assert!(result.content_ok, "handoff run must complete: {result:?}");
    assert!(
        result.handoffs > 0,
        "overlap must produce handoffs: {result:?}"
    );
    tb
}

fn golden(tb: &Testbed, scenario: &str) -> [u8; 20] {
    common::assert_trace_clean(tb, scenario);
    let jsonl = tb.trace_jsonl();
    assert!(!jsonl.is_empty(), "{scenario}: trace must not be empty");
    // The export round-trips: parsing it back yields the recorded events.
    let parsed = parse_jsonl(&jsonl).expect("golden trace parses");
    assert_eq!(
        parsed,
        tb.sim.trace().expect("recorder attached").to_vec(),
        "{scenario}: JSONL round-trip"
    );
    sha1::sha1(jsonl.as_bytes())
}

#[test]
fn staging_golden_trace_is_byte_identical_and_oracle_clean() {
    let a = staging_run(42);
    let b = staging_run(42);
    let digest_a = golden(&a, "staging run A");
    let digest_b = golden(&b, "staging run B");
    assert_eq!(
        digest_a, digest_b,
        "same-seed staging traces must serialize byte-identically"
    );
    // The golden trace actually exercises the staging path.
    let records = a.sim.trace().expect("recorder attached").to_vec();
    let staged = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Staged { .. }))
        .count();
    let edge_fetches = records
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::FetchComplete {
                    source: FetchSource::EdgeCache,
                    ok: true,
                    ..
                }
            )
        })
        .count();
    assert!(staged > 0, "staging run must stage chunks");
    assert!(edge_fetches > 0, "staging run must fetch from edge caches");
}

/// The scheduler backend must be invisible in the serialized trace: the
/// timer wheel breaks equal-timestamp ties in push (seq) order, exactly
/// like the reference heap's `(at, seq)` ordering, so the JSONL export —
/// every event, in order, byte for byte — is identical across backends.
#[test]
fn golden_trace_is_byte_identical_across_schedulers() {
    let wheel = staging_run_with(42, Scheduler::Wheel);
    let heap = staging_run_with(42, Scheduler::Heap);
    assert_eq!(
        golden(&wheel, "staging run (wheel)"),
        golden(&heap, "staging run (heap)"),
        "wheel and heap schedulers must serialize identical golden traces"
    );
}

#[test]
fn handoff_golden_trace_is_byte_identical_and_oracle_clean() {
    let a = handoff_run(42);
    let b = handoff_run(42);
    let digest_a = golden(&a, "handoff run A");
    let digest_b = golden(&b, "handoff run B");
    assert_eq!(
        digest_a, digest_b,
        "same-seed handoff traces must serialize byte-identically"
    );
    let records = a.sim.trace().expect("recorder attached").to_vec();
    let commits = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::HandoffCommit { .. }))
        .count();
    assert!(commits > 0, "handoff run must record committed handoffs");
}

#[test]
fn corrupted_golden_trace_is_rejected_with_specific_invariants() {
    let tb = staging_run(42);
    let jsonl = tb.trace_jsonl();
    let clean = parse_jsonl(&jsonl).expect("golden trace parses");
    let oracle = TraceOracle::new();
    assert!(oracle.audit(&clean).is_empty(), "golden trace is clean");

    // Forgery 1: orphan deliveries — more arrivals on a link than it ever
    // transmitted. A live trace legitimately ends with packets still in
    // flight (tx > deliver), so the forgery must spend that slack first.
    let mut orphaned = clean.clone();
    let donor = *orphaned
        .iter()
        .find(|r| matches!(r.event, TraceEvent::PacketDeliver { .. }))
        .expect("golden trace has deliveries");
    let TraceEvent::PacketDeliver { link, .. } = donor.event else {
        unreachable!()
    };
    let slack: i64 = orphaned
        .iter()
        .map(|r| match r.event {
            TraceEvent::PacketTx { link: l, .. } if l == link => 1,
            TraceEvent::PacketDeliver { link: l, .. } if l == link => -1,
            TraceEvent::PacketDrop {
                link: l,
                reason: DropReason::InFlight,
                ..
            } if l == link => -1,
            _ => 0,
        })
        .sum();
    let last = *orphaned.last().expect("non-empty");
    for i in 0..=slack.max(0) as u64 {
        orphaned.push(TraceRecord {
            seq: last.seq + 1 + i,
            at: last.at,
            node: donor.node,
            event: donor.event,
        });
    }
    let violations = oracle.audit(&orphaned);
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::OrphanDelivery),
        "forged delivery must be flagged as an orphan: {violations:#?}"
    );

    // Forgery 2: time flows backwards at one record.
    let mut reversed = clean.clone();
    let mid = reversed.len() / 2;
    assert!(reversed[mid].at.as_micros() > 0, "mid-run event after t=0");
    reversed[mid].at = softstage_suite::simnet::SimTime::ZERO;
    let violations = oracle.audit(&reversed);
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::MonotoneTime),
        "time reversal must be flagged: {violations:#?}"
    );

    // Forgery 3: a duplicated sequence number.
    let mut reseq = clean.clone();
    reseq[mid].seq = reseq[mid - 1].seq;
    let violations = oracle.audit(&reseq);
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::MonotoneSeq),
        "duplicate sequence number must be flagged: {violations:#?}"
    );

    // Forgery 4: an edge-cache fetch success for a chunk no cache staged.
    let mut unstaged = clean.clone();
    for r in &mut unstaged {
        if let TraceEvent::Staged { .. } = r.event {
            // Rewrite every staging event into an unrelated one, so the
            // edge fetches that relied on them become unexplained.
            r.event = TraceEvent::CacheWipe;
        }
    }
    let violations = oracle.audit(&unstaged);
    assert!(
        violations
            .iter()
            .any(|v| v.kind == InvariantKind::UnstagedEdgeFetch),
        "edge fetch without staging must be flagged: {violations:#?}"
    );
}
