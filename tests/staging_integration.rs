//! Staging-path integration: VNF behaviour, profile state, coordinator
//! adaptation.

use simnet::{SimDuration, SimTime};
use softstage_suite::experiments::{build, ExperimentParams, MB, MBPS};
use softstage_suite::softstage::{SoftStageConfig, StagingVnf};
use softstage_suite::xia_router::RouterNode;

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(2000)
}

#[test]
fn vnf_stages_and_serves_chunks() {
    let p = ExperimentParams {
        file_size: 6 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(600));
    let mut tb = build(&p, &schedule, SoftStageConfig::default());
    let result = tb.run(deadline());
    assert!(result.content_ok);
    // At least one edge VNF did real staging work.
    let mut staged_total = 0;
    let mut intercepts = 0;
    for &edge in &tb.edges {
        let router = tb.sim.node::<RouterNode>(edge).unwrap();
        let vnf = router.host().app::<StagingVnf>(0).expect("vnf deployed");
        staged_total += vnf.stats().staged;
        intercepts += router.stats().cid_intercepts;
    }
    assert!(staged_total > 0, "VNFs staged chunks from the origin");
    assert!(intercepts > 0, "edge caches intercepted CID fetches");
    // Staged fetches dominate.
    assert!(result.from_staged >= result.from_origin);
}

#[test]
fn coordinator_deepens_staging_when_internet_slows() {
    // Run two scenarios and compare the final target depth estimate.
    let depth_for = |bw_mbps: u64| {
        let p = ExperimentParams {
            file_size: 12 * MB,
            chunk_size: MB,
            internet_bw_bps: bw_mbps * MBPS,
            ..ExperimentParams::default()
        };
        let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
        let mut tb = build(&p, &schedule, SoftStageConfig::default());
        let result = tb.run(deadline());
        assert!(result.content_ok, "{bw_mbps} Mbps run finished");
        tb.client_app().coordinator().target_depth()
    };
    let fast = depth_for(60);
    let slow = depth_for(15);
    assert!(
        slow >= fast,
        "staging depth at 15 Mbps ({slow}) >= at 60 Mbps ({fast})"
    );
}

#[test]
fn profile_reaches_consistent_terminal_state() {
    let p = ExperimentParams {
        file_size: 4 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(600));
    let mut tb = build(&p, &schedule, SoftStageConfig::default());
    let result = tb.run(deadline());
    assert!(result.content_ok);
    let app = tb.client_app();
    let profile = app.profile();
    assert_eq!(profile.fetched(), 4);
    for i in 0..profile.len() {
        let rec = profile.get(i).unwrap();
        assert_eq!(
            rec.fetch_state,
            softstage_suite::softstage::FetchState::Done,
            "chunk {i} fetched"
        );
        assert!(rec.fetch_latency.is_some());
    }
}

#[test]
fn tiny_edge_cache_forces_origin_fallbacks_but_completes() {
    // The edge cache can hold barely one chunk: staged copies are evicted
    // under churn, so some staged fetches fail and fall back to the
    // origin (the paper's fault-tolerance path).
    let p = ExperimentParams {
        file_size: 8 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(600));
    let mut tb = build(&p, &schedule, SoftStageConfig::default());
    for &edge in &tb.edges.clone() {
        // Shrink the store *after* build: keep existing entries out.
        let router = tb.sim.node_mut::<RouterNode>(edge).unwrap();
        let store = router.host_mut().store_mut();
        *store = softstage_suite::xcache::ChunkStore::new(
            MB + MB / 2,
            softstage_suite::xcache::EvictionPolicy::Lru,
        );
    }
    let result = tb.run(deadline());
    assert!(result.completion.is_some(), "still completes: {result:?}");
    assert!(result.content_ok);
}
