//! Chaos suite: every fault the simulator can inject, driven against full
//! downloads. The invariant under test is the paper's fault-tolerance
//! claim (§III-B): SoftStage may lose staging, never the download — every
//! run below must complete with a byte-correct content hash, within a
//! bounded slowdown of the fault-free run.
//!
//! Every scenario runs with the flight recorder attached and finishes by
//! auditing the recorded trace against the invariant oracle, so a fault
//! path that corrupts event ordering or bookkeeping fails even when the
//! download itself limps through.

mod common;

use softstage_suite::experiments::{build, ExperimentParams, RunResult, Testbed, MB};
use softstage_suite::simnet::fault::FaultPlan;
use softstage_suite::simnet::{SimDuration, SimTime};
use softstage_suite::softstage::{RetryProfile, SoftStageConfig, StagingMode};

use common::{deadline, small, testbed, TRACE_CAPACITY};

const SEEDS: [u64; 3] = [7, 101, 9001];

/// Runs the scenario and asserts the core chaos invariants: completion,
/// content integrity, bounded slowdown versus the fault-free twin, and an
/// oracle-clean trace on both runs. Returns the faulted testbed with its
/// result so scenarios can assert on post-run node state.
fn assert_survives(
    params: &ExperimentParams,
    inject: impl Fn(&mut Testbed),
) -> (Testbed, RunResult) {
    let mut clean_tb = testbed(params);
    clean_tb.enable_trace(TRACE_CAPACITY);
    let clean = clean_tb.run(deadline());
    assert!(clean.content_ok, "fault-free run must pass: {clean:?}");
    common::assert_trace_clean(&clean_tb, &format!("clean seed {}", params.seed));
    let clean_t = clean.completion.expect("fault-free completion");

    let mut tb = testbed(params);
    tb.enable_trace(TRACE_CAPACITY);
    inject(&mut tb);
    let result = tb.run(deadline());
    assert!(
        result.content_ok,
        "download must complete with intact content under faults \
         (seed {}): {result:?}",
        params.seed
    );
    common::assert_trace_clean(&tb, &format!("faulted seed {}", params.seed));
    let faulted_t = result.completion.expect("faulted completion");
    // Bounded slowdown: recovery may cost retry back-offs and re-staging,
    // but never an unbounded stall.
    let bound = SimTime::ZERO + (clean_t - SimTime::ZERO) * 8 + SimDuration::from_secs(120);
    assert!(
        faulted_t <= bound,
        "slowdown out of bounds (seed {}): clean {clean_t:?}, faulted {faulted_t:?}",
        params.seed
    );
    (tb, result)
}

#[test]
fn link_flaps_mid_download_are_survivable() {
    for seed in SEEDS {
        let p = small(seed);
        assert_survives(&p, |tb| {
            let mut plan = FaultPlan::new();
            for (i, &link) in tb.radio_links.clone().iter().enumerate() {
                plan.random_flaps(
                    link,
                    4,
                    SimTime::ZERO + SimDuration::from_secs(2),
                    SimTime::ZERO + SimDuration::from_secs(60),
                    SimDuration::from_millis(1500),
                    seed ^ (i as u64 + 1),
                );
            }
            plan.apply(&mut tb.sim);
        });
    }
}

#[test]
fn burst_loss_windows_are_survivable() {
    for seed in SEEDS {
        let p = small(seed);
        assert_survives(&p, |tb| {
            let mut plan = FaultPlan::new();
            for &link in &tb.radio_links.clone() {
                // Near-total loss for 5 s right in the middle of the
                // first encounters.
                plan.burst_loss(
                    link,
                    SimTime::ZERO + SimDuration::from_secs(4),
                    SimDuration::from_secs(5),
                    0.95,
                );
            }
            plan.apply(&mut tb.sim);
        });
    }
}

#[test]
fn wire_corruption_is_dropped_by_checksum_and_survivable() {
    for seed in SEEDS {
        let p = small(seed);
        let (_, result) = assert_survives(&p, |tb| {
            let mut plan = FaultPlan::new();
            for &link in &tb.radio_links.clone() {
                plan.corruption(
                    link,
                    SimTime::ZERO + SimDuration::from_secs(3),
                    SimDuration::from_secs(4),
                    0.5,
                );
            }
            plan.apply(&mut tb.sim);
        });
        assert!(result.content_ok);
    }
}

#[test]
fn vnf_crash_and_restart_is_survivable() {
    for seed in SEEDS {
        let p = small(seed);
        assert_survives(&p, |tb| {
            let mut plan = FaultPlan::new();
            // Both edge routers crash (staging state, caches and beacons
            // die) and come back 8 s later; the client must ride out the
            // silence and re-stage after the restart.
            for &edge in &tb.edges.clone() {
                plan.crash(
                    edge,
                    SimTime::ZERO + SimDuration::from_secs(6),
                    Some(SimDuration::from_secs(8)),
                );
            }
            plan.apply(&mut tb.sim);
        });
    }
}

#[test]
fn cache_wipe_falls_back_to_origin_and_is_survivable() {
    for seed in SEEDS {
        let p = small(seed);
        assert_survives(&p, |tb| {
            let mut plan = FaultPlan::new();
            for &edge in &tb.edges.clone() {
                // Wipe staged chunks twice, mid-encounter: staged fetches
                // miss and must re-fetch from the origin.
                plan.cache_wipe(edge, SimTime::ZERO + SimDuration::from_secs(5));
                plan.cache_wipe(edge, SimTime::ZERO + SimDuration::from_secs(25));
            }
            plan.apply(&mut tb.sim);
        });
    }
}

#[test]
fn cache_squeeze_evicts_staged_chunks_and_is_survivable() {
    for seed in SEEDS {
        let p = small(seed);
        let (tb, _) = assert_survives(&p, |tb| {
            let mut plan = FaultPlan::new();
            for &edge in &tb.edges.clone() {
                // Squeeze each edge cache to two chunks' worth mid-run:
                // staged chunks are evicted under pressure, so fetches
                // that miss must re-stage or fall back to the origin.
                plan.cache_squeeze(
                    edge,
                    SimTime::ZERO + SimDuration::from_secs(4),
                    (2 * MB) as usize,
                );
            }
            plan.apply(&mut tb.sim);
        });
        // The squeeze is permanent: the shrunken limit survives the run.
        let caps = tb.edge_cache_capacities();
        assert!(
            !caps.is_empty() && caps.iter().all(|&c| c == (2 * MB) as usize),
            "edge caches must report the squeezed capacity (seed {seed}): {caps:?}"
        );
    }
}

#[test]
fn slow_edge_service_degradation_is_survivable() {
    for seed in SEEDS {
        let p = small(seed);
        assert_survives(&p, |tb| {
            let mut plan = FaultPlan::new();
            for &edge in &tb.edges.clone() {
                // Every staging reply is held 1.5 s for a 20 s window:
                // acks land late — some after the client's back-off fires —
                // and the download must absorb the jitter.
                plan.slow_edge(
                    edge,
                    SimTime::ZERO + SimDuration::from_secs(2),
                    SimDuration::from_secs(20),
                    SimDuration::from_millis(1500),
                );
            }
            plan.apply(&mut tb.sim);
        });
    }
}

#[test]
fn vnf_unreachable_uses_explicit_origin_fallback() {
    for seed in SEEDS {
        let p = ExperimentParams {
            vnf_deployed: false,
            ..small(seed)
        };
        let mut tb = testbed(&p);
        tb.enable_trace(TRACE_CAPACITY);
        let result = tb.run(deadline());
        assert!(result.content_ok, "no-VNF run (seed {seed}): {result:?}");
        assert_eq!(result.from_staged, 0);
        common::assert_trace_clean(&tb, &format!("no-VNF seed {seed}"));
        let app = tb.client_app();
        assert!(
            app.stats().origin_fallbacks > 0,
            "origin-DAG fallback must be recorded: {:?}",
            app.stats()
        );
        assert_eq!(app.mode(), StagingMode::OriginFallback);
    }
}

#[test]
fn long_vnf_outage_exhausts_retry_budget_and_degrades_to_xftp() {
    for seed in SEEDS {
        let p = ExperimentParams {
            // One network so the client cannot escape to a healthy VNF.
            edge_networks: 1,
            file_size: 12 * softstage_suite::experiments::MB,
            chunk_size: softstage_suite::experiments::MB,
            seed,
            ..ExperimentParams::default()
        };
        let config = SoftStageConfig {
            retry: RetryProfile {
                stage_retry: SimDuration::from_millis(250),
                stage_retry_cap: SimDuration::from_secs(1),
                stage_retry_budget: 8,
                ..RetryProfile::default()
            },
            ..SoftStageConfig::default()
        };
        let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
        let mut tb = build(&p, &schedule, config);
        tb.enable_trace(TRACE_CAPACITY);
        let mut plan = FaultPlan::new();
        for &edge in &tb.edges.clone() {
            // A 300 s outage: far longer than the budget can bridge, so
            // staging must be abandoned; the download then finishes as
            // plain Xftp once the router is back.
            plan.crash(
                edge,
                SimTime::ZERO + SimDuration::from_secs(2),
                Some(SimDuration::from_secs(300)),
            );
        }
        plan.apply(&mut tb.sim);
        let result = tb.run(deadline());
        assert!(
            result.content_ok,
            "degraded run must still complete intact (seed {seed}): {result:?}"
        );
        common::assert_trace_clean(&tb, &format!("long-outage seed {seed}"));
        let app = tb.client_app();
        let stats = app.stats();
        assert!(
            stats.degraded,
            "budget exhaustion must be recorded (seed {seed}): {stats:?}"
        );
        assert_eq!(app.mode(), StagingMode::Degraded);
        assert!(
            stats.stage_retries <= 8,
            "retry budget must bound staging retries (seed {seed}): {stats:?}"
        );
    }
}
