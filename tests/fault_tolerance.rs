//! Fault tolerance: SoftStage must degrade to Xftp-equivalent behaviour,
//! never break the download (§III-B "Fault Tolerance", Table II).

use simnet::{SimDuration, SimTime};
use softstage_suite::experiments::{build, ExperimentParams, MB, MBPS};
use softstage_suite::softstage::SoftStageConfig;

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(2000)
}

fn small() -> ExperimentParams {
    ExperimentParams {
        file_size: 6 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    }
}

#[test]
fn no_vnf_deployed_falls_back_to_origin_everywhere() {
    let p = ExperimentParams {
        vnf_deployed: false,
        ..small()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
    let result = build(&p, &schedule, SoftStageConfig::default()).run(deadline());
    assert!(result.content_ok, "completes without any VNF: {result:?}");
    assert_eq!(result.from_staged, 0);
    assert_eq!(result.from_origin, 6);
}

#[test]
fn severe_internet_loss_is_survivable() {
    // 15 Mbps-equivalent loss-throttled Internet plus 37 % wireless loss.
    let p = ExperimentParams {
        internet_bw_bps: 15 * MBPS,
        wireless_loss: 0.37,
        ..small()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
    for config in [SoftStageConfig::default(), SoftStageConfig::baseline()] {
        let result = build(&p, &schedule, config).run(deadline());
        assert!(result.content_ok, "harsh conditions: {result:?}");
    }
}

#[test]
fn single_network_with_gaps_works_without_handoff_targets() {
    // Only one edge network: every disconnection is a pure outage.
    let p = ExperimentParams {
        edge_networks: 1,
        ..small()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
    let result = build(&p, &schedule, SoftStageConfig::default()).run(deadline());
    assert!(result.content_ok, "single-network drive: {result:?}");
}

#[test]
fn sparse_coverage_trace_still_makes_progress() {
    use softstage_suite::vehicular::{synthesize_wardriving, WardrivingParams};
    let trace = synthesize_wardriving(
        "sparse",
        WardrivingParams {
            coverage: 0.3,
            mean_burst_s: 10.0,
            total_s: 120.0,
        },
        5,
    );
    let result = softstage_suite::experiments::fig7::replay(&trace, 5);
    assert!(
        result.softstage_chunks >= result.xftp_chunks,
        "staging never hurts: {result:?}"
    );
    assert!(result.softstage_chunks > 0, "progress under 30% coverage");
}
