//! Fault tolerance: SoftStage must degrade to Xftp-equivalent behaviour,
//! never break the download (§III-B "Fault Tolerance", Table II). Every
//! testbed scenario also runs under the flight recorder and must produce
//! an oracle-clean trace.

mod common;

use softstage_suite::experiments::{build, ExperimentParams, MBPS};
use softstage_suite::simnet::SimDuration;
use softstage_suite::softstage::SoftStageConfig;

use common::{deadline, TRACE_CAPACITY};

fn small() -> ExperimentParams {
    common::small(ExperimentParams::default().seed)
}

#[test]
fn no_vnf_deployed_falls_back_to_origin_everywhere() {
    let p = ExperimentParams {
        vnf_deployed: false,
        ..small()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
    let mut tb = build(&p, &schedule, SoftStageConfig::default());
    tb.enable_trace(TRACE_CAPACITY);
    let result = tb.run(deadline());
    assert!(result.content_ok, "completes without any VNF: {result:?}");
    assert_eq!(result.from_staged, 0);
    assert_eq!(result.from_origin, 6);
    common::assert_trace_clean(&tb, "no VNF deployed");
}

#[test]
fn severe_internet_loss_is_survivable() {
    // 15 Mbps-equivalent loss-throttled Internet plus 37 % wireless loss.
    let p = ExperimentParams {
        internet_bw_bps: 15 * MBPS,
        wireless_loss: 0.37,
        ..small()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
    // Both the SoftStage client and the Xftp baseline must survive; the
    // oracle relaxes handoff atomicity for the baseline's legacy policy
    // automatically (see `Testbed::audit_trace`).
    for (name, config) in [
        ("softstage", SoftStageConfig::default()),
        ("baseline", SoftStageConfig::baseline()),
    ] {
        let mut tb = build(&p, &schedule, config);
        tb.enable_trace(TRACE_CAPACITY);
        let result = tb.run(deadline());
        assert!(result.content_ok, "harsh conditions ({name}): {result:?}");
        common::assert_trace_clean(&tb, &format!("severe loss, {name}"));
    }
}

#[test]
fn single_network_with_gaps_works_without_handoff_targets() {
    // Only one edge network: every disconnection is a pure outage.
    let p = ExperimentParams {
        edge_networks: 1,
        ..small()
    };
    let mut tb = common::testbed(&p);
    tb.enable_trace(TRACE_CAPACITY);
    let result = tb.run(deadline());
    assert!(result.content_ok, "single-network drive: {result:?}");
    common::assert_trace_clean(&tb, "single network");
}

#[test]
fn sparse_coverage_trace_still_makes_progress() {
    // fig7's replay harness owns its simulators internally, so this
    // scenario runs without the flight recorder.
    use softstage_suite::vehicular::{synthesize_wardriving, WardrivingParams};
    let trace = synthesize_wardriving(
        "sparse",
        WardrivingParams {
            coverage: 0.3,
            mean_burst_s: 10.0,
            total_s: 120.0,
        },
        5,
    );
    let result = softstage_suite::experiments::fig7::replay(&trace, 5);
    assert!(
        result.softstage_chunks >= result.xftp_chunks,
        "staging never hurts: {result:?}"
    );
    assert!(result.softstage_chunks > 0, "progress under 30% coverage");
}
