//! Fleet-scale regression suite: a thousand concurrent clients in one
//! world must be a pure function of `(FleetParams, seed)` — byte-identical
//! digests across fresh builds, byte-identical tables across `--jobs`
//! counts, and a flight record that satisfies every oracle invariant
//! under multi-client interleaving.
//!
//! Worlds here are sized for debug-mode test runs: many clients, tiny
//! per-client payloads.

mod common;

use softstage_suite::experiments::fleet::{build, reset_summary_cache, summary, FleetParams};
use softstage_suite::experiments::{execute, Cell, ExecConfig, TableSpec};
use softstage_suite::simnet::SimDuration;
use softstage_suite::xia_addr::sha1;
use util::json::ToJson;

/// A 1000-client fleet with a 32 KiB working set per client — big fleet,
/// small bytes, so the whole suite stays debug-fast.
fn kilo_fleet(seed: u64) -> FleetParams {
    FleetParams {
        clients: 1000,
        edges: 2,
        catalog_objects: 16,
        chunks_per_object: 2,
        chunk_size: 16 * 1024,
        objects_per_client: 1,
        zipf_skew: 1.0,
        edge_cache_bytes: 128 * 1024,
        arrival_window: SimDuration::from_secs(5),
        horizon: SimDuration::from_secs(120),
        ..FleetParams::default()
    }
    .with_seed(seed)
}

#[test]
fn thousand_client_world_is_deterministic() {
    let a = build(&kilo_fleet(42)).run();
    let b = build(&kilo_fleet(42)).run();
    assert_eq!(a.completed, 1000, "every client finishes: {a:?}");
    assert_eq!(
        a.digest, b.digest,
        "two fresh 1000-client worlds diverged: {a:?} vs {b:?}"
    );
    assert!(
        a.cache_hit_ratio > 0.0,
        "1000 clients over 16 objects must share edge copies: {a:?}"
    );
}

#[test]
fn thousand_client_traces_are_byte_identical() {
    let jsonl = |seed: u64| {
        let mut world = build(&kilo_fleet(seed));
        world.sim.enable_trace(common::TRACE_CAPACITY);
        world.run();
        assert_eq!(world.sim.trace().map_or(0, |t| t.dropped()), 0);
        world
            .sim
            .trace()
            .map(softstage_suite::simnet::TraceSink::to_jsonl)
            .unwrap_or_default()
    };
    let a = jsonl(42);
    let b = jsonl(42);
    assert!(!a.is_empty(), "fleet run must record events");
    assert_eq!(
        sha1::sha1(a.as_bytes()),
        sha1::sha1(b.as_bytes()),
        "golden fleet trace differs between identical runs"
    );
}

#[test]
fn fleet_oracle_passes_multi_client_interleaving() {
    // A couple hundred clients through two edges: staging requests,
    // cache hits, evictions and fallbacks from distinct clients
    // interleave in one trace, and every oracle invariant must still
    // hold (per-link conservation, breaker transitions, staging
    // bookkeeping).
    let mut world = build(
        &FleetParams {
            clients: 200,
            ..kilo_fleet(42)
        }
        .with_seed(7),
    );
    world.sim.enable_trace(common::TRACE_CAPACITY);
    let s = world.run();
    assert_eq!(s.completed, 200, "{s:?}");
    assert_eq!(
        world.sim.trace().map_or(0, |t| t.dropped()),
        0,
        "trace ring overflowed; raise the capacity"
    );
    let violations = world.audit_trace();
    assert!(
        violations.is_empty(),
        "fleet trace invariant violations: {violations:#?}"
    );
}

#[test]
fn fleet_tables_are_byte_identical_across_jobs() {
    // Regression for the tentpole's determinism claim: `reproduce fleet
    // --jobs N` must be a pure function of `(spec, seeds, base seed)`.
    // The memo cache is flushed between runs so the comparison really
    // re-simulates instead of replaying cached summaries.
    let spec = || {
        let params = |seed| {
            FleetParams {
                clients: 300,
                ..kilo_fleet(0)
            }
            .with_seed(seed)
        };
        TableSpec::new("fleet-mini", "Mini fleet determinism probe", "s / ratio")
            .cell(Cell::new("p50", "p50 (s)", None, move |seed| {
                summary(&params(seed)).p50_s
            }))
            .cell(Cell::new(
                "hit",
                "edge cache hit ratio",
                None,
                move |seed| summary(&params(seed)).cache_hit_ratio,
            ))
    };
    let run = |jobs| {
        reset_summary_cache();
        let tables = execute(
            &[spec()],
            &ExecConfig {
                jobs,
                seeds: 2,
                base_seed: 42,
            },
        );
        tables.to_vec().to_json().to_string_pretty()
    };
    let serial = run(1);
    let pooled = run(4);
    assert_eq!(serial, pooled, "fleet tables differ between --jobs 1 and 4");
}
