//! Determinism regression: the simulation is a pure function of
//! `(topology, params, seed)` — two runs of the same configuration must
//! produce byte-identical statistics, with and without an active fault
//! schedule. Any hidden nondeterminism (hash-map iteration order leaking
//! into event order, unseeded randomness, wall-clock use) breaks this.

use std::fmt::Write as _;

use softstage_suite::simnet::fault::FaultPlan;
use softstage_suite::simnet::{SimDuration, SimTime};
use softstage_suite::softstage::SoftStageConfig;
use softstage_suite::experiments::{build, ExperimentParams, Testbed, MB};
use softstage_suite::xia_addr::sha1;

fn params(seed: u64) -> ExperimentParams {
    ExperimentParams {
        file_size: 6 * MB,
        chunk_size: MB,
        seed,
        ..ExperimentParams::default()
    }
}

/// Runs one download and folds every observable statistic into a digest.
fn run_digest(seed: u64, faults: bool) -> [u8; 20] {
    let p = params(seed);
    let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
    let mut tb = build(&p, &schedule, SoftStageConfig::default());
    if faults {
        let mut plan = FaultPlan::new();
        for (i, &link) in tb.radio_links.clone().iter().enumerate() {
            plan.random_flaps(
                link,
                3,
                SimTime::ZERO + SimDuration::from_secs(2),
                SimTime::ZERO + SimDuration::from_secs(40),
                SimDuration::from_millis(1200),
                seed ^ (i as u64 + 1),
            );
            plan.burst_loss(
                link,
                SimTime::ZERO + SimDuration::from_secs(10),
                SimDuration::from_secs(3),
                0.9,
            );
        }
        for &edge in &tb.edges.clone() {
            plan.cache_wipe(edge, SimTime::ZERO + SimDuration::from_secs(8));
        }
        plan.apply(&mut tb.sim);
    }
    let result = tb.run(SimTime::ZERO + SimDuration::from_secs(2000));
    digest_of(&tb, seed, faults, &result)
}

fn digest_of(
    tb: &Testbed,
    seed: u64,
    faults: bool,
    result: &softstage_suite::experiments::RunResult,
) -> [u8; 20] {
    let mut s = String::new();
    let _ = write!(s, "seed={seed} faults={faults} {result:?}");
    let app = tb.client_app();
    let _ = write!(s, " stats={:?} mode={:?}", app.stats(), app.mode());
    let _ = write!(s, " digest={:02x?}", app.content_digest());
    let _ = write!(s, " sim={:?}", tb.sim.stats());
    sha1::sha1(s.as_bytes())
}

#[test]
fn same_seed_is_byte_identical() {
    for seed in [3u64, 77] {
        let a = run_digest(seed, false);
        let b = run_digest(seed, false);
        assert_eq!(a, b, "fault-free runs diverged for seed {seed}");
    }
}

#[test]
fn same_seed_is_byte_identical_under_faults() {
    for seed in [3u64, 77] {
        let a = run_digest(seed, true);
        let b = run_digest(seed, true);
        assert_eq!(a, b, "faulted runs diverged for seed {seed}");
    }
}

#[test]
fn different_seeds_differ() {
    // Sanity: the seed actually reaches the simulation.
    assert_ne!(run_digest(3, false), run_digest(4, false));
}
