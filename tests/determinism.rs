//! Determinism regression: the simulation is a pure function of
//! `(topology, params, seed)` — two runs of the same configuration must
//! produce byte-identical statistics, with and without an active fault
//! schedule. Any hidden nondeterminism (hash-map iteration order leaking
//! into event order, unseeded randomness, wall-clock use) breaks this.
//!
//! The digest also folds in the flight recorder's full event sequence, so
//! nondeterminism visible only in event *ordering* (not in the final
//! counters) is caught too.

mod common;

use softstage_suite::simnet::fault::FaultPlan;
use softstage_suite::simnet::{Scheduler, SimDuration, SimTime};

/// Runs one download and folds every observable statistic — including the
/// recorded trace — into a digest.
fn run_digest(seed: u64, faults: bool) -> [u8; 20] {
    run_digest_with(seed, faults, Scheduler::Wheel)
}

/// Same run, but on an explicit event-queue backend: the scheduler must
/// be invisible in every observable.
fn run_digest_with(seed: u64, faults: bool, scheduler: Scheduler) -> [u8; 20] {
    let p = common::small(seed);
    let mut tb = common::testbed(&p);
    tb.sim.set_scheduler(scheduler);
    tb.enable_trace(common::TRACE_CAPACITY);
    if faults {
        let mut plan = FaultPlan::new();
        for (i, &link) in tb.radio_links.clone().iter().enumerate() {
            plan.random_flaps(
                link,
                3,
                SimTime::ZERO + SimDuration::from_secs(2),
                SimTime::ZERO + SimDuration::from_secs(40),
                SimDuration::from_millis(1200),
                seed ^ (i as u64 + 1),
            );
            plan.burst_loss(
                link,
                SimTime::ZERO + SimDuration::from_secs(10),
                SimDuration::from_secs(3),
                0.9,
            );
        }
        for &edge in &tb.edges.clone() {
            plan.cache_wipe(edge, SimTime::ZERO + SimDuration::from_secs(8));
        }
        plan.apply(&mut tb.sim);
    }
    let result = tb.run(common::deadline());
    common::assert_trace_clean(&tb, &format!("seed {seed} faults {faults}"));
    common::digest_of(&tb, &format!("seed={seed} faults={faults}"), &result)
}

#[test]
fn same_seed_is_byte_identical() {
    for seed in [3u64, 77] {
        let a = run_digest(seed, false);
        let b = run_digest(seed, false);
        assert_eq!(a, b, "fault-free runs diverged for seed {seed}");
    }
}

#[test]
fn same_seed_is_byte_identical_under_faults() {
    for seed in [3u64, 77] {
        let a = run_digest(seed, true);
        let b = run_digest(seed, true);
        assert_eq!(a, b, "faulted runs diverged for seed {seed}");
    }
}

#[test]
fn different_seeds_differ() {
    // Sanity: the seed actually reaches the simulation.
    assert_ne!(run_digest(3, false), run_digest(4, false));
}

/// The timer wheel's strict FIFO tie-break at equal timestamps makes its
/// dispatch order identical to the binary heap's `(at, seq)` order, so
/// the full digest — statistics plus the recorded event sequence — must
/// not depend on which backend ran the simulation, with or without an
/// active fault schedule.
#[test]
fn same_seed_digest_is_scheduler_independent() {
    for faults in [false, true] {
        let wheel = run_digest_with(3, faults, Scheduler::Wheel);
        let heap = run_digest_with(3, faults, Scheduler::Heap);
        assert_eq!(
            wheel, heap,
            "wheel and heap schedulers diverged (faults {faults})"
        );
    }
}
