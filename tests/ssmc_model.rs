//! Engine tests: detection power (known-bad fixtures must be flagged),
//! exhaustive byte-identity of known-good structures, and the DFS
//! machinery itself (choice coverage, preemption bounding, deadlock
//! detection, trace dumps).

use std::collections::BTreeMap;

use ssmc::sync::{scope, AtomicUsize, Mutex, OnceLock, Ordering, RaceCell};
use ssmc::{choice, explore, Config, Failure};

fn quiet(name: &str) -> Config {
    let mut cfg = Config::new(name);
    // Tests assert on the returned Failure; never write trace files
    // into the environment-configured CI directory.
    cfg.trace_dir = Some(std::env::temp_dir().join("ssmc-test-traces"));
    cfg
}

/// The PR-9-style plain-map memo: check-then-insert on a shared map
/// with no synchronization. The detector must flag it as a data race
/// and report both racing source paths.
#[test]
fn plain_map_memo_races_and_reports_both_sites() {
    let result = explore(quiet("plain-map-memo"), || {
        let memo: RaceCell<BTreeMap<String, u64>> = RaceCell::new(BTreeMap::new());
        scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let cached = memo.with(|m| m.get("fig6a").copied());
                    if cached.is_none() {
                        let value = 42; // "run the simulation"
                        memo.with_mut(|m| {
                            m.insert("fig6a".to_owned(), value);
                        });
                    }
                });
            }
        });
    });
    let failure = result.expect_err("the unsynchronized memo must be flagged");
    match failure {
        Failure::Race { first, second } => {
            assert!(
                first.site.contains("model.rs") && second.site.contains("model.rs"),
                "both racing paths must point into this fixture: {first} vs {second}"
            );
            assert!(
                first.write || second.write,
                "at least one side of a race is a write: {first} vs {second}"
            );
            assert_ne!(
                first.thread, second.thread,
                "the race is between two distinct threads"
            );
        }
        other => panic!("expected a race, got: {other}"),
    }
}

/// The detector is happens-before based: it flags the memo race even on
/// the very first (serial, race-"winning") schedule, before any racy
/// interleaving is actually executed.
#[test]
fn race_detection_does_not_require_the_racy_schedule() {
    let mut cfg = quiet("race-hb-not-schedule");
    cfg.preemption_bound = Some(0);
    let result = explore(cfg, || {
        let cell = RaceCell::new(0u32);
        scope(|s| {
            s.spawn(|| cell.with_mut(|v| *v = 1));
            s.spawn(|| {
                cell.with(|v| *v);
            });
        });
    });
    assert!(
        matches!(result, Err(Failure::Race { .. })),
        "zero preemptions still finds the race through vector clocks"
    );
}

/// The shipped memo shape (`util::sync::MemoMap`): a mutex-guarded
/// slot map with `OnceLock` slots. Exhaustively race-free, the
/// initializer runs exactly once, and every schedule observes the same
/// value.
#[test]
fn oncelock_memo_is_race_free_and_computes_once() {
    let stats = explore(quiet("oncelock-memo"), || {
        let slots: Mutex<BTreeMap<String, std::sync::Arc<OnceLock<u64>>>> =
            Mutex::new(BTreeMap::new());
        let calls = AtomicUsize::new(0);
        let seen = Mutex::new(Vec::new());
        scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let slot = std::sync::Arc::clone(
                        slots.lock().entry("fleet/250".to_owned()).or_default(),
                    );
                    let v = *slot.get_or_init(|| {
                        calls.fetch_add(1, Ordering::SeqCst);
                        42
                    });
                    seen.lock().push(v);
                });
            }
        });
        (calls.load(Ordering::SeqCst), seen.into_inner())
    })
    .expect("the OnceLock memo must pass exhaustively");
    assert!(
        stats.schedules >= 2,
        "exploration must cover more than one schedule, got {stats:?}"
    );
    assert!(!stats.capped);
}

/// The work-stealing pool shape (`util::sync::parallel_map`): an atomic
/// cursor hands out indices, a mutex-guarded slot table collects
/// results. Byte-identical merged output across every explored
/// schedule (enforced by the engine's result check).
#[test]
fn work_stealing_cursor_merges_identically_across_schedules() {
    let stats = explore(quiet("work-stealing-pool"), || {
        let slots = Mutex::new(vec![0u64; 4]);
        let next = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..2 {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= 4 {
                        break;
                    }
                    let value = (i as u64 + 1) * 10;
                    slots.lock()[i] = value;
                });
            }
        });
        slots.into_inner()
    })
    .expect("the pool must merge identically under every schedule");
    assert!(stats.schedules >= 2, "got {stats:?}");
}

/// A genuinely schedule-dependent result is a Mismatch failure, not a
/// silent pass — this is the byte-identity contract's teeth.
#[test]
fn schedule_dependent_results_are_rejected() {
    let result = explore(quiet("order-dependent"), || {
        let log = Mutex::new(Vec::new());
        scope(|s| {
            for id in 0..2u32 {
                let log = &log;
                s.spawn(move || log.lock().push(id));
            }
        });
        log.into_inner()
    });
    assert!(
        matches!(result, Err(Failure::Mismatch { .. })),
        "append order depends on the schedule and must be rejected: {result:?}"
    );
}

/// Classic lock-order inversion deadlocks; the report names every
/// blocked thread.
#[test]
fn lock_order_inversion_deadlocks() {
    let result = explore(quiet("lock-inversion"), || {
        let a = Mutex::new(());
        let b = Mutex::new(());
        scope(|s| {
            s.spawn(|| {
                let _ga = a.lock();
                let _gb = b.lock();
            });
            s.spawn(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            });
        });
    });
    match result {
        Err(Failure::Deadlock { waiting }) => {
            assert_eq!(waiting.len(), 3, "two workers plus the joining scope owner");
            assert!(waiting.iter().any(|w| w.contains("lock")), "{waiting:?}");
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

/// `choice(n)` explores every branch across schedules and costs no
/// preemption budget.
#[test]
fn choice_covers_every_branch() {
    let mask = std::cell::Cell::new(0u8);
    let mut cfg = quiet("choice-coverage");
    cfg.check_results = false; // the branch index is returned
    let stats = explore(cfg, || {
        let c = choice(3);
        mask.set(mask.get() | (1 << c));
        c
    })
    .expect("pure data choice cannot fail");
    assert_eq!(stats.schedules, 3);
    assert_eq!(mask.get(), 0b111, "all three branches must run");
}

/// A panic inside checked code surfaces as Failure::Panic with the
/// message, not as a test-process abort.
#[test]
fn checked_code_panics_are_reported() {
    let result = explore(quiet("panicky"), || {
        if choice(2) == 1 {
            panic!("boom at branch 1");
        }
    });
    match result {
        Err(Failure::Panic { msg, .. }) => assert!(msg.contains("boom"), "{msg}"),
        other => panic!("expected a panic report, got {other:?}"),
    }
}

/// Raising the preemption bound strictly widens the explored schedule
/// space; the unbounded run is the full interleaving count.
#[test]
fn preemption_bound_controls_schedule_count() {
    let run = |bound| {
        let mut cfg = quiet("bound-scaling");
        cfg.preemption_bound = bound;
        explore(cfg, || {
            let counter = AtomicUsize::new(0);
            scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            counter.load(Ordering::SeqCst)
        })
        .expect("a commutative counter passes at any bound")
    };
    let strict = run(Some(0));
    let loose = run(Some(2));
    let unbounded = run(None);
    assert!(strict.schedules >= 1);
    assert!(
        strict.schedules < loose.schedules,
        "bound 0 ({strict:?}) must explore fewer schedules than bound 2 ({loose:?})"
    );
    assert!(
        loose.schedules <= unbounded.schedules,
        "bound 2 ({loose:?}) cannot exceed unbounded ({unbounded:?})"
    );
}

/// A failing exploration dumps the schedule trace (JSON lines, failure
/// summary first) into the configured directory.
#[test]
fn failing_run_dumps_a_schedule_trace() {
    let dir = std::env::temp_dir().join(format!("ssmc-trace-{}", std::process::id()));
    let mut cfg = Config::new("trace-dump");
    cfg.trace_dir = Some(dir.clone());
    let result = explore(cfg, || {
        let cell = RaceCell::new(0u32);
        scope(|s| {
            s.spawn(|| cell.with_mut(|v| *v = 1));
            s.spawn(|| cell.with_mut(|v| *v = 2));
        });
    });
    assert!(result.is_err());
    let trace = std::fs::read_to_string(dir.join("trace-dump.jsonl"))
        .expect("failure must write a trace file");
    let first = trace.lines().next().expect("trace has a header line");
    assert!(
        first.contains("\"failure\"") && first.contains("data race"),
        "header names the failure: {first}"
    );
    assert!(
        trace.lines().count() > 1,
        "trace lists the executed schedule steps"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Outside a model run the primitives are plain pass-throughs and
/// `choice` always takes branch 0.
#[test]
fn primitives_work_outside_exploration() {
    assert_eq!(choice(5), 0);
    let m = Mutex::new(7u32);
    *m.lock() += 1;
    assert_eq!(m.into_inner(), 8);
    let a = AtomicUsize::new(1);
    a.store(5, Ordering::SeqCst);
    assert_eq!(a.fetch_add(1, Ordering::SeqCst), 5);
    assert_eq!(a.load(Ordering::SeqCst), 6);
    let o: OnceLock<u32> = OnceLock::default();
    assert!(o.get().is_none());
    assert_eq!(*o.get_or_init(|| 3), 3);
    assert_eq!(o.get(), Some(&3));
    let c = RaceCell::new(vec![1u8]);
    c.with_mut(|v| v.push(2));
    assert_eq!(c.with(Vec::len), 2);
    assert_eq!(c.into_inner(), vec![1, 2]);
    let b = ssmc::sync::AtomicBool::new(false);
    assert!(!b.swap(true, Ordering::SeqCst));
    assert!(b.load(Ordering::SeqCst));
    let u = ssmc::sync::AtomicU64::new(10);
    u.store(11, Ordering::SeqCst);
    assert_eq!(u.fetch_add(1, Ordering::SeqCst), 11);
    let done = std::cell::Cell::new(false);
    scope(|s| {
        s.spawn(|| {});
        let _ = &done;
    });
    done.set(true);
    assert!(done.get());
}
