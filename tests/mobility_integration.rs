//! Mobility integration: handoffs, migrations and the chunk-aware policy.

use simnet::{SimDuration, SimTime};
use softstage_suite::experiments::{build, ExperimentParams, MB};
use softstage_suite::softstage::{HandoffPolicy, SoftStageConfig};
use softstage_suite::vehicular::CoverageSchedule;

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(2000)
}

#[test]
fn client_roams_across_alternating_networks() {
    // Short encounters force the download to span several networks.
    let p = ExperimentParams {
        file_size: 10 * MB,
        chunk_size: MB,
        encounter: SimDuration::from_secs(3),
        ..ExperimentParams::default()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(2000));
    let mut tb = build(&p, &schedule, SoftStageConfig::default());
    let result = tb.run(deadline());
    assert!(result.content_ok);
    assert!(
        result.handoffs >= 2,
        "the drive must cross networks: {result:?}"
    );
    // Both edge networks served something (the client used each side).
    let app = tb.client_app();
    assert!(app.is_done());
}

#[test]
fn chunk_aware_policy_avoids_mid_chunk_migrations_under_overlap() {
    let p = ExperimentParams {
        file_size: 16 * MB,
        chunk_size: 2 * MB,
        ..ExperimentParams::default()
    };
    let schedule = CoverageSchedule::overlapping(
        p.encounter,
        SimDuration::from_secs(3),
        2,
        SimDuration::from_secs(2000),
    );
    let run = |policy| {
        let config = SoftStageConfig {
            policy,
            ..SoftStageConfig::default()
        };
        build(&p, &schedule, config).run(deadline())
    };
    let chunk_aware = run(HandoffPolicy::ChunkAware);
    let default = run(HandoffPolicy::Default);
    assert!(chunk_aware.content_ok && default.content_ok);
    assert!(
        chunk_aware.migrations <= default.migrations,
        "chunk-aware migrations ({}) <= default ({})",
        chunk_aware.migrations,
        default.migrations
    );
    assert!(
        chunk_aware.completion.unwrap() <= default.completion.unwrap(),
        "deferring to chunk boundaries can only help under overlap: {:?} vs {:?}",
        chunk_aware.completion,
        default.completion
    );
}

#[test]
fn overlapping_coverage_never_disconnects_the_client() {
    let p = ExperimentParams {
        file_size: 6 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    };
    let schedule = CoverageSchedule::overlapping(
        p.encounter,
        SimDuration::from_secs(3),
        2,
        SimDuration::from_secs(2000),
    );
    assert!(schedule.coverage_fraction(SimDuration::from_secs(60)) > 0.99);
    let result = build(&p, &schedule, SoftStageConfig::default()).run(deadline());
    assert!(result.content_ok);
}

#[test]
fn long_disconnections_still_complete() {
    let p = ExperimentParams {
        file_size: 6 * MB,
        chunk_size: MB,
        disconnection: SimDuration::from_secs(100),
        ..ExperimentParams::default()
    };
    let schedule = p.alternating_schedule(SimDuration::from_secs(3600));
    let mut tb = build(&p, &schedule, SoftStageConfig::default());
    let result = tb.run(SimTime::ZERO + SimDuration::from_secs(3600));
    assert!(result.content_ok, "survives 100 s gaps: {result:?}");
}
