//! Whole-system integration: the paper's testbed downloads correct
//! content deterministically with both clients.

use simnet::{SimDuration, SimTime};
use softstage_suite::experiments::{build, ExperimentParams, MB};
use softstage_suite::softstage::SoftStageConfig;

fn params() -> ExperimentParams {
    ExperimentParams {
        file_size: 6 * MB,
        chunk_size: MB,
        ..ExperimentParams::default()
    }
}

fn deadline() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(600)
}

#[test]
fn both_clients_download_verified_content() {
    let p = params();
    let schedule = p.alternating_schedule(SimDuration::from_secs(600));
    for config in [SoftStageConfig::default(), SoftStageConfig::baseline()] {
        let staging = config.staging_enabled;
        let result = build(&p, &schedule, config).run(deadline());
        assert!(result.completion.is_some(), "staging={staging}: finished");
        assert!(result.content_ok, "staging={staging}: verified");
        assert_eq!(result.chunks_fetched, 6);
    }
}

#[test]
fn identical_seeds_are_bit_for_bit_reproducible() {
    let p = params();
    let schedule = p.alternating_schedule(SimDuration::from_secs(600));
    let one = build(&p, &schedule, SoftStageConfig::default()).run(deadline());
    let two = build(&p, &schedule, SoftStageConfig::default()).run(deadline());
    assert_eq!(one.completion, two.completion);
    assert_eq!(one.chunk_completions, two.chunk_completions);
    assert_eq!(one.from_staged, two.from_staged);
    assert_eq!(one.handoffs, two.handoffs);
}

#[test]
fn different_seeds_differ_but_both_succeed() {
    let p1 = params();
    let p2 = ExperimentParams {
        seed: 1234,
        ..params()
    };
    let s1 = p1.alternating_schedule(SimDuration::from_secs(600));
    let s2 = p2.alternating_schedule(SimDuration::from_secs(600));
    let one = build(&p1, &s1, SoftStageConfig::default()).run(deadline());
    let two = build(&p2, &s2, SoftStageConfig::default()).run(deadline());
    assert!(one.content_ok && two.content_ok);
    // Different seeds generate different content and loss patterns; the
    // exact timeline differs.
    assert_ne!(one.chunk_completions, two.chunk_completions);
}

#[test]
fn softstage_fetches_mostly_from_edges_and_wins() {
    let p = params();
    let schedule = p.alternating_schedule(SimDuration::from_secs(600));
    let soft = build(&p, &schedule, SoftStageConfig::default()).run(deadline());
    let base = build(&p, &schedule, SoftStageConfig::baseline()).run(deadline());
    assert!(soft.from_staged > soft.from_origin, "{soft:?}");
    assert_eq!(base.from_staged, 0);
    assert!(
        soft.completion.unwrap() <= base.completion.unwrap(),
        "softstage {:?} <= xftp {:?}",
        soft.completion,
        base.completion
    );
}
