#!/usr/bin/env bash
# Full offline verification: tier-1 (build + workspace tests) plus the
# fault-injection chaos suite and the determinism regression. Runs with no
# network access — the workspace has zero external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== formatting =="
cargo fmt --check

echo "== tier-1: release build =="
cargo build --release --offline

echo "== sslint (determinism & hygiene audit): cold vs warm cache =="
# Cold run (target/sslint-cache.json removed) then a warm replay of the
# snapshot; fails unless the two JSONL reports are byte-identical (or the
# audit itself finds anything), and records both wall-clocks as the
# sslint entry in BENCH_reproduce.json.
cargo build -q --release --offline -p sslint
scripts/bench_reproduce.sh sslint

echo "== sslint: trace-coverage obligation is in force =="
# The overload path added trace kinds (stage_reject, stage_timeout,
# breaker_transition, cache_resize, service_degrade); the trace-coverage
# rule is what obliges each one to keep an emit site and an oracle/test
# reference. Fail loudly if the rule ever drops out of the catalogue.
# (plain grep, not -q: -q closes the pipe on the first match, which the
# emitter sees as a broken-pipe write error)
cargo run -q -p sslint --release --offline -- --list-rules | grep '^trace-coverage' > /dev/null \
    || { echo "verify: sslint trace-coverage rule missing" >&2; exit 1; }

echo "== sslint: sync-shim obligation is in force =="
# The sync-shim rule is what makes every lock, atomic and spawn in the
# workspace reachable by the ssmc schedule explorer (`util::sync` is the
# only sanctioned std::sync/std::thread naming site). Fail loudly if it
# ever drops out of the catalogue.
cargo run -q -p sslint --release --offline -- --list-rules | grep '^sync-shim' > /dev/null \
    || { echo "verify: sslint sync-shim rule missing" >&2; exit 1; }

echo "== tier-1: workspace tests =="
cargo test -q --offline

echo "== chaos suite (fault injection, release) =="
cargo test -q --offline --release -p softstage-suite --test chaos --test determinism

echo "== scheduler differential suite (wheel vs heap, release) =="
# Property tests drive both event-queue backends through the same push/pop
# sequences (equal-timestamp bursts, far-future overflow, pop limits) and
# full simulator runs, asserting identical dispatch order throughout.
cargo test -q --offline --release -p simnet --test sched_diff

echo "== allocation regression (counting allocator, release) =="
# Steady-state transmit/deliver must stay at zero heap ops per event.
cargo test -q --offline --release -p softstage-bench --test alloc_regression

echo "== overload suite (backpressure, admission, circuit breaker, release) =="
cargo test -q --offline --release -p softstage-suite --test overload

echo "== ssmc model checking (bounded schedule exploration, release) =="
# Detection power (the known-bad plain-map memo must be flagged with both
# racing sites) plus exhaustive byte-identity of the real concurrent
# structures (work-stealing cursor, OnceLock memo) and the choice-driven
# breaker walk — all under the preemption-bound-2 CI budget, seconds not
# minutes.
cargo test -q --offline --release -p softstage-suite --test ssmc_model

echo "== util::sync under the model cfg (shim routed through ssmc) =="
# Rebuilds util with `--cfg model` into its own target dir (so the main
# build cache stays warm) and explores parallel_map and MemoMap through
# the exact shim the production sites use.
RUSTFLAGS="--cfg model" CARGO_TARGET_DIR=target/model \
    cargo test -q --offline -p softstage-util --test model

echo "== golden traces (flight recorder + invariant oracle, release) =="
cargo test -q --offline --release -p softstage-suite --test golden_trace

echo "== benches compile (feature-gated, not run) =="
cargo check -q --offline -p softstage-bench --features bench --benches

echo "== reproduce: parallel determinism diff + wall-clock record =="
# Paired --jobs 1 vs --jobs 2 on the small smoke target: fails unless
# byte-identical, refreshes the smoke entry in BENCH_reproduce.json.
# For the full trajectory point, run: scripts/bench_reproduce.sh all 4
scripts/bench_reproduce.sh smoke 2 2
# The overload table (completion vs staging-queue cap) rides along as a
# second recorded row: graceful degradation stays benchmarked.
scripts/bench_reproduce.sh overload 2 1
# Fleet smoke: ~200 concurrent clients sharing edge caches, end to end.
# Records wall-clock and clients-simulated/sec; fails unless --jobs 1 and
# --jobs 2 stay byte-identical. The full 1000-client sweep is the `fleet`
# target: scripts/bench_reproduce.sh fleet 4
scripts/bench_reproduce.sh fleet-smoke 2 1
# Scheduler microbenchmark: events/sec and allocs/event for both queue
# backends (heap = the pre-wheel baseline), recorded as the sched entry.
scripts/bench_reproduce.sh sched
# Model-checker throughput: schedules explored per second on the
# canonical pool shape, recorded as the ssmc entry.
scripts/bench_reproduce.sh ssmc

echo "verify: OK"
