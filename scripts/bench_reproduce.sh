#!/usr/bin/env bash
# Paired determinism + wall-clock benchmark for the `reproduce` binary.
#
#   scripts/bench_reproduce.sh [TARGET] [PAR_JOBS] [SEEDS]
#
# Runs TARGET (default: smoke) at --jobs 1 and --jobs PAR_JOBS (default:
# 2), fails unless the two JSON outputs are byte-identical, and records
# both wall-clocks into BENCH_reproduce.json. The file keeps one entry
# per target, so the cheap smoke entry refreshed by scripts/verify.sh
# does not clobber a full `all` run (BENCH_FULL: `bench_reproduce.sh all 4`).
# Speedup is only meaningful relative to the recorded host_cores.
set -euo pipefail
cd "$(dirname "$0")/.."

TARGET="${1:-smoke}"
PAR="${2:-2}"
SEEDS="${3:-1}"
SEED=42
OUT=BENCH_reproduce.json
BIN=target/release/reproduce

CORES=$(nproc 2>/dev/null || echo 1)

# Writes ENTRY (one `    "name": {...}` line) into $OUT, carrying the
# other targets' entries forward.
write_entry() { # write_entry NAME ENTRY_LINE
    local lines=("$2")
    if [ -f "$OUT" ]; then
        while IFS= read -r line; do
            case "$line" in
            '    "'*'": {'*)
                t="${line#    \"}"
                t="${t%%\"*}"
                if [ "$t" != "$1" ]; then
                    lines+=("${line%,}")
                fi
                ;;
            esac
        done < "$OUT"
    fi
    {
        echo '{'
        echo '  "benchmark": "reproduce wall-clock (seconds), --jobs 1 vs --jobs N",'
        echo '  "entries": {'
        printf '%s\n' "${lines[@]}" | sort | awk 'NR > 1 { print prev "," } { prev = $0 } END { print prev }'
        echo '  }'
        echo '}'
    } > "$OUT"
}

# `sslint` is also its own shape: a cold audit (snapshot removed) against
# a warm replay of target/sslint-cache.json. Fails unless the two JSONL
# outputs are byte-identical (and propagates exit 1 if the audit finds
# anything), then records both wall-clocks as the sslint entry.
if [ "$TARGET" = sslint ]; then
    LBIN=target/release/sslint
    if [ ! -x "$LBIN" ]; then
        cargo build -q --release --offline -p sslint
    fi
    cold_out=$(mktemp) warm_out=$(mktemp)
    trap 'rm -f "$cold_out" "$warm_out"' EXIT
    rm -f target/sslint-cache.json
    t0=$(date +%s%3N)
    "$LBIN" --format jsonl > "$cold_out"
    t1=$(date +%s%3N)
    "$LBIN" --format jsonl > "$warm_out"
    t2=$(date +%s%3N)
    if ! cmp -s "$cold_out" "$warm_out"; then
        echo "bench_reproduce: FAIL: sslint cold and warm findings differ" >&2
        exit 1
    fi
    cold_secs=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1000 }')
    warm_secs=$(awk -v a="$t1" -v b="$t2" 'BEGIN { printf "%.3f", (b - a) / 1000 }')
    speedup=$(awk -v a="$cold_secs" -v b="$warm_secs" \
        'BEGIN { printf "%.2f", (b > 0) ? a / b : 1 }')
    entry=$(printf '    "sslint": {"cold_secs": %s, "warm_secs": %s, "warm_speedup": %s, "host_cores": %s, "byte_identical": true}' \
        "$cold_secs" "$warm_secs" "$speedup" "$CORES")
    write_entry sslint "$entry"
    echo "bench_reproduce: sslint cold ${cold_secs}s, warm ${warm_secs}s" \
        "(${speedup}x, byte-identical) -> $OUT"
    exit 0
fi

# `ssmc` is the model-checker throughput microbenchmark: unbounded
# exploration of the canonical 3-worker pool shape, reporting schedules
# explored per second.
if [ "$TARGET" = ssmc ]; then
    MBIN=target/release/ssmc_bench
    if [ ! -x "$MBIN" ]; then
        cargo build -q --release --offline -p ssmc --bin ssmc_bench
    fi
    payload=$("$MBIN" --json)
    write_entry ssmc "    \"ssmc\": $payload"
    echo "bench_reproduce: ssmc -> $OUT"
    exit 0
fi

# `sched` is a different shape of target: the scheduler microbenchmark
# (events/sec + allocs/event, wheel vs heap — heap being the pre-wheel
# baseline) rather than a paired reproduce run.
if [ "$TARGET" = sched ]; then
    SBIN=target/release/sched_bench
    if [ ! -x "$SBIN" ]; then
        cargo build -q --release --offline -p softstage-bench --bin sched_bench
    fi
    payload=$("$SBIN" --events 2000000 --json)
    write_entry sched "    \"sched\": $payload"
    echo "bench_reproduce: sched -> $OUT"
    exit 0
fi

if [ ! -x "$BIN" ]; then
    cargo build -q --release --offline -p softstage-experiments --bin reproduce
fi

run_timed() { # run_timed JOBS JSON_PATH -> prints elapsed seconds
    local t0 t1
    t0=$(date +%s%3N)
    "$BIN" "$TARGET" --seed "$SEED" --seeds "$SEEDS" --jobs "$1" \
        --json "$2" > /dev/null
    t1=$(date +%s%3N)
    awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1000 }'
}

j1=$(mktemp) jn=$(mktemp)
trap 'rm -f "$j1" "$jn"' EXIT

serial_secs=$(run_timed 1 "$j1")
par_secs=$(run_timed "$PAR" "$jn")

if ! cmp -s "$j1" "$jn"; then
    echo "bench_reproduce: FAIL: $TARGET --jobs 1 and --jobs $PAR JSON differ" >&2
    exit 1
fi
speedup=$(awk -v a="$serial_secs" -v b="$par_secs" \
    'BEGIN { printf "%.2f", (b > 0) ? a / b : 1 }')

entry=$(printf '    "%s": {"serial_secs": %s, "parallel_secs": %s, "parallel_jobs": %s, "seeds": %s, "speedup": %s, "host_cores": %s, "byte_identical": true}' \
    "$TARGET" "$serial_secs" "$par_secs" "$PAR" "$SEEDS" "$speedup" "$CORES")

# Fleet targets also record simulation throughput: the table's
# "clients simulated (count)" row times the replicate count, over the
# parallel run's wall-clock.
case "$TARGET" in
fleet | fleet-smoke)
    clients=$(awk -F': ' '
        /"label": "clients simulated \(count\)"/ { grab = 1; next }
        grab && /"measured"/ { sub(/,$/, "", $2); sub(/\.0+$/, "", $2); print $2; exit }
    ' "$j1")
    if [ -n "$clients" ]; then
        cps=$(awk -v c="$clients" -v s="$SEEDS" -v t="$par_secs" \
            'BEGIN { printf "%.1f", (t > 0) ? c * s / t : 0 }')
        entry="${entry%\}}, \"clients_simulated\": $clients, \"clients_per_sec\": $cps}"
    fi
    ;;
esac

write_entry "$TARGET" "$entry"

echo "bench_reproduce: $TARGET jobs=1 ${serial_secs}s, jobs=$PAR ${par_secs}s" \
    "(${speedup}x on $CORES cores, byte-identical) -> $OUT"
